// Federated client: local training, the defense-protocol reports
// (activation ranks / votes / accuracy), and the malicious behaviours.
//
// A client owns its model replica and its private local dataset. All
// interaction with the server flows through typed messages (comm::Network)
// via handle_pending(), or through the equivalent direct methods that the
// message handlers delegate to.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "comm/message.h"
#include "comm/network.h"
#include "data/dataset.h"
#include "fl/attack.h"
#include "nn/model_zoo.h"
#include "tensor/quant.h"

namespace fedcleanse::fl {

struct TrainConfig {
  int local_epochs = 2;
  int batch_size = 32;
  double lr = 0.1;
  double momentum = 0.0;
  // L2 weight decay applied to every layer during local training (per-layer
  // weight_decay set by the experiment, e.g. Fig 10, takes precedence when
  // larger).
  double weight_decay = 0.0;
  // Compute kernel for the defense's activation-profiling scans (rank/vote
  // reports). Training always runs fp32; the scans only feed rank order, so
  // the quantized kernels trade tiny activation error for throughput.
  tensor::ComputeKernel scan_kernel = tensor::ComputeKernel::kF32;
  // Wire codec for the client→server model update. kF32 keeps the original
  // byte-identical float wire; kInt8 quantizes the delta before sending.
  comm::UpdateCodec update_codec = comm::UpdateCodec::kF32;
};

class Client {
 public:
  Client(int id, nn::ModelSpec model, data::Dataset local_data, TrainConfig config,
         std::uint64_t seed);

  int id() const { return id_; }
  bool malicious() const { return attack_.has_value(); }
  std::size_t dataset_size() const { return data_.size(); }
  const data::Dataset& local_data() const { return data_; }
  nn::ModelSpec& model() { return model_; }

  // Adjust the local learning rate (the fine-tuning stage runs at a reduced
  // rate so the recovered model is not destabilized).
  void set_lr(double lr) { config_.lr = lr; }
  double lr() const { return config_.lr; }

  // Turn this client into an attacker: its training set is augmented with
  // backdoored victim-label copies and its updates are amplified.
  void make_malicious(AttackSpec spec);
  const AttackSpec* attack() const { return attack_ ? &*attack_ : nullptr; }

  // Anticipated pruning mask for the kPruneAware attacker (Attack 2): the
  // attacker trains with these masks applied so the backdoor moves into
  // essential neurons.
  void set_anticipated_masks(std::vector<std::vector<std::uint8_t>> masks);
  const std::vector<std::vector<std::uint8_t>>& anticipated_masks() const {
    return anticipated_masks_;
  }

  // The evolving state a virtual-client ledger must carry across eviction
  // (everything else re-derives from (run_seed, id) or the global model).
  common::RngState rng_state() const { return rng_.state(); }
  void restore_rng(const common::RngState& state) { rng_.restore(state); }

  // --- round protocol -------------------------------------------------------
  // Sync to the global parameters, train locally, and return the update
  // Δω (= x_i − ω_t for honest clients, γ·(x_atk − ω_t) for attackers).
  std::vector<float> compute_update(std::span<const float> global_params);

  // --- defense protocol -----------------------------------------------------
  // Structural prune masks pushed by the server before fine-tuning.
  void apply_prune_masks(const std::vector<std::vector<std::uint8_t>>& masks);

  // Mean post-ReLU activation per neuron of the pruning layer, over the
  // client's *clean* local data at the given global parameters.
  std::vector<double> activation_means(std::span<const float> global_params);

  // RAP report: rank position of every neuron, 1 = most active. Honest
  // clients rank by activation; a kRankManipulation attacker promotes its
  // backdoor neurons to the top ranks.
  std::vector<std::uint32_t> rank_report(std::span<const float> global_params);

  // MVP report: one vote per neuron, 1 = prune. Exactly
  // round(p·P) votes are cast. A kRankManipulation attacker never votes for
  // its backdoor neurons.
  std::vector<std::uint8_t> vote_report(std::span<const float> global_params,
                                        double prune_rate);

  // Local test accuracy at the given parameters (used when the server has no
  // validation data). An attacker reports a manipulated (inflated) value.
  double report_accuracy(std::span<const float> global_params);

  // Drain and answer all pending messages from the server. Malformed or
  // mistyped messages (a faulty wire) are logged and skipped, never fatal.
  void handle_pending(comm::Network& net);
  // Answer a single already-received message with the same log-and-skip
  // error handling. The client binary drains the queue itself (it intercepts
  // kRoundSync and snapshots after broadcasts — DESIGN.md §18) and hands
  // everything else here.
  void handle_one(comm::Network& net, const comm::Message& msg);

  // Checkpoint support. Everything else a client holds (local data, attack
  // spec, training config) is rebuilt deterministically from the simulation
  // seed, so a snapshot only needs the parts that evolve across rounds: the
  // model replica (params + prune masks), the RNG stream position, the
  // possibly-rescaled learning rate, and the anticipated prune masks.
  // restore_state throws CheckpointError on an architecture mismatch.
  void save_state(common::ByteWriter& w) const;
  void restore_state(common::ByteReader& r);

 private:
  // Decode and answer one server message; throws fedcleanse::Error on
  // anything malformed (handle_pending catches and logs).
  void handle_message(comm::Network& net, const comm::Message& msg);
  void train_locally();
  // Activation increase caused by the trigger, per neuron — the attacker's
  // estimate of which neurons carry its backdoor.
  std::vector<double> backdoor_neuron_scores();
  void self_adjust_weights();

  int id_;
  nn::ModelSpec model_;
  data::Dataset data_;         // clean local data
  data::Dataset train_data_;   // poisoned superset for attackers
  TrainConfig config_;
  std::optional<AttackSpec> attack_;
  std::vector<std::vector<std::uint8_t>> anticipated_masks_;
  common::Rng rng_;
};

}  // namespace fedcleanse::fl
