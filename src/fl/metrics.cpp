#include "fl/metrics.h"

#include "tensor/ops.h"

namespace fedcleanse::fl {

double evaluate_accuracy(nn::Sequential& model, const data::Dataset& dataset,
                         int batch_size) {
  FC_REQUIRE(!dataset.empty(), "cannot evaluate on an empty dataset");
  std::size_t correct = 0;
  std::vector<std::size_t> indices;
  for (std::size_t start = 0; start < dataset.size();
       start += static_cast<std::size_t>(batch_size)) {
    const std::size_t end =
        std::min(dataset.size(), start + static_cast<std::size_t>(batch_size));
    indices.clear();
    for (std::size_t i = start; i < end; ++i) indices.push_back(i);
    auto batch = dataset.make_batch(indices);
    auto logits = model.forward(batch.images);
    auto preds = tensor::argmax_rows(logits);
    for (std::size_t i = 0; i < preds.size(); ++i) {
      if (preds[i] == batch.labels[i]) ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(dataset.size());
}

double attack_success_rate(nn::Sequential& model, const data::Dataset& backdoor_testset,
                           int batch_size) {
  return evaluate_accuracy(model, backdoor_testset, batch_size);
}

}  // namespace fedcleanse::fl
