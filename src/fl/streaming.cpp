#include "fl/streaming.h"

#include "common/error.h"

namespace fedcleanse::fl {

StreamingMeanAccumulator::StreamingMeanAccumulator(std::size_t n_positions)
    : n_positions_(n_positions) {}

void StreamingMeanAccumulator::fold(const std::vector<float>& update) {
  if (acc_.empty()) {
    acc_.assign(update.size(), 0.0f);
  } else {
    FC_REQUIRE(update.size() == acc_.size(), "update length mismatch in streaming fold");
  }
  for (std::size_t i = 0; i < update.size(); ++i) acc_[i] += update[i];
  ++n_accepted_;
}

void StreamingMeanAccumulator::accept(std::size_t position, std::vector<float> update) {
  FC_REQUIRE(position < n_positions_, "streaming fold position out of range");
  FC_REQUIRE(position >= next_ && buffer_.find(position) == buffer_.end(),
             "position accepted twice in streaming fold");
  if (position != next_) {
    // Out-of-order (an earlier position is still pending a retry): park it.
    buffer_.emplace(position, std::move(update));
    return;
  }
  fold(update);
  ++next_;
  // A newly contiguous prefix may have been waiting in the buffer.
  for (auto it = buffer_.begin(); it != buffer_.end() && it->first == next_;
       it = buffer_.erase(it)) {
    fold(it->second);
    ++next_;
  }
}

std::vector<float> StreamingMeanAccumulator::finalize() {
  // Positions still buffered sit after a permanent gap (a client that never
  // replied): fold them now, still in ascending position order.
  for (auto& [position, update] : buffer_) fold(update);
  buffer_.clear();
  FC_REQUIRE(n_accepted_ > 0, "no updates to aggregate");
  const float inv_n = 1.0f / static_cast<float>(n_accepted_);
  for (auto& v : acc_) v *= inv_n;
  return std::move(acc_);
}

StreamingAggregator::StreamingAggregator(Mode mode, std::size_t n_positions)
    : mode_(mode), mean_(n_positions) {}

void StreamingAggregator::accept(std::size_t position, std::vector<float> update) {
  ++n_accepted_;
  if (mode_ == Mode::kFold) {
    mean_.accept(position, std::move(update));
  } else {
    const bool inserted = retained_.emplace(position, std::move(update)).second;
    FC_REQUIRE(inserted, "position accepted twice in retained aggregation");
  }
}

std::vector<float> StreamingAggregator::finalize_mean() {
  FC_REQUIRE(mode_ == Mode::kFold, "finalize_mean on a retaining aggregator");
  return mean_.finalize();
}

std::vector<std::vector<float>> StreamingAggregator::finalize_retained() {
  FC_REQUIRE(mode_ == Mode::kRetain, "finalize_retained on a folding aggregator");
  std::vector<std::vector<float>> values;
  values.reserve(retained_.size());
  for (auto& [position, update] : retained_) values.push_back(std::move(update));
  retained_.clear();
  return values;
}

}  // namespace fedcleanse::fl
