// End-to-end federated training simulation: synthesizes the dataset,
// partitions it non-IID, wires server and clients over the in-memory
// network, runs the round protocol (with attackers), and records per-round
// test accuracy and attack success rate.
//
// The defense pipeline (defense/pipeline.h) operates on a finished
// Simulation: it reuses the same clients for the pruning protocol and
// fine-tuning rounds.
#pragma once

#include <memory>
#include <vector>

#include "common/threadpool.h"
#include "common/timer.h"
#include "data/partition.h"
#include "data/synth.h"
#include "fl/client.h"
#include "fl/server.h"

namespace fedcleanse::fl {

struct SimulationConfig {
  nn::Architecture arch = nn::Architecture::kMnistCnn;
  data::SynthKind dataset = data::SynthKind::kDigits;
  int n_clients = 10;
  int n_attackers = 1;
  int rounds = 12;
  // Clients sampled per round; 0 = all clients every round (the paper's
  // simplified rule; Fig 7 restores random selection).
  int clients_per_round = 0;
  int samples_per_class_train = 100;
  int samples_per_class_test = 30;
  int labels_per_client = 3;      // K-label non-IID distribution
  int samples_per_client = 0;     // 0 = even split
  double data_noise = 0.10;
  TrainConfig train;
  AttackSpec attack;
  // Distributed Backdoor Attack: split attack.pattern into one slice per
  // attacker; evaluation always uses the full pattern.
  bool dba = false;
  // L2 penalty applied to the last conv layer only (Fig 10).
  double last_conv_weight_decay = 0.0;
  ServerConfig server;
  std::uint64_t seed = 42;
  // Worker threads for the per-client round work and the batch-parallel
  // tensor kernels. 0 = hardware concurrency; the FEDCLEANSE_THREADS
  // environment variable overrides whatever is configured here. Results are
  // bit-identical for every thread count.
  int n_threads = 0;
};

struct RoundRecord {
  int round = 0;
  double test_acc = 0.0;
  double attack_acc = 0.0;
};

class Simulation {
 public:
  explicit Simulation(SimulationConfig config);
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  // Run all configured rounds (appends to history; callable once).
  void run(bool record_history = true);
  // Run a single round; returns the participating client ids.
  std::vector<int> run_round(std::uint32_t round);

  Server& server() { return *server_; }
  std::vector<Client>& clients() { return clients_; }
  comm::Network& network() { return *net_; }
  const SimulationConfig& config() const { return config_; }

  // The simulation's execution context (also installed as the process-wide
  // ambient pool for the tensor kernels while this Simulation is alive).
  common::ThreadPool& pool() { return *pool_; }

  // Drain each listed client's pending server messages, one client per pool
  // task. Clients share no mutable state (own model, data, RNG, channel), and
  // the server's collect loops fix the aggregation order afterwards, so the
  // result is identical to a serial drain.
  void dispatch_clients(const std::vector<int>& ids);

  const data::Dataset& test_set() const { return test_; }
  const data::Dataset& backdoor_testset() const { return backdoor_test_; }

  // Current global-model metrics.
  double test_accuracy();
  double attack_success();

  const std::vector<RoundRecord>& history() const { return history_; }
  double training_seconds() const { return training_seconds_; }

  // Ids of all / malicious clients.
  std::vector<int> all_client_ids() const;
  std::vector<int> attacker_ids() const;

 private:
  SimulationConfig config_;
  std::unique_ptr<common::ThreadPool> pool_;
  common::Rng rng_;
  data::Dataset test_;
  data::Dataset backdoor_test_;
  std::unique_ptr<comm::Network> net_;
  std::unique_ptr<Server> server_;
  std::vector<Client> clients_;
  std::vector<RoundRecord> history_;
  double training_seconds_ = 0.0;
};

}  // namespace fedcleanse::fl
