// End-to-end federated training simulation: synthesizes the dataset,
// partitions it non-IID, wires server and clients over the in-memory
// network, runs the round protocol (with attackers), and records per-round
// test accuracy and attack success rate.
//
// Two client-residency engines share one protocol (DESIGN.md §14):
//  - materialized (small populations, the default): every client is built
//    eagerly at construction, exactly as before the virtual-client refactor,
//    so existing runs stay byte-identical.
//  - virtual (million-client scale): clients are derived lazily from
//    (run_seed, client_id) by fl::ClientFactory when sampled into a cohort;
//    only the resident cohort lives in memory, recycled through a pooled
//    slab, with evicted clients' evolving state (RNG position, learning
//    rate, masks) parked in a small per-id ledger.
//
// The defense pipeline (defense/pipeline.h) operates on a finished
// Simulation: it reuses the same clients for the pruning protocol and
// fine-tuning rounds.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "comm/fault_model.h"
#include "comm/transport.h"
#include "common/threadpool.h"
#include "common/timer.h"
#include "data/partition.h"
#include "data/synth.h"
#include "fl/client.h"
#include "fl/server.h"

namespace fedcleanse::comm {
class FaultyNetwork;
}

namespace fedcleanse::fl {

class ClientFactory;

// Client storage policy. kAuto picks kVirtual only for large populations
// (≥ 4096 clients) with per-round sampling — every small-population config
// keeps the materialized engine and its exact historical numerics.
enum class ClientResidency { kAuto, kMaterialized, kVirtual };

// Round-protocol robustness knobs (retry backoff + the socket transport's
// timeouts/heartbeats). Both deployment binaries expose every field as a
// flag — nothing here is a hardcoded cap.
struct ProtocolConfig {
  // exchange_streaming's retry deadline grows as base << min(attempt, shift).
  int max_backoff_shift = 3;
  // Connect/accept/heartbeat/backoff knobs for the socket transport; unused
  // (but harmless) on the in-process wire.
  comm::TransportConfig transport;
};

struct SimulationConfig {
  nn::Architecture arch = nn::Architecture::kMnistCnn;
  data::SynthKind dataset = data::SynthKind::kDigits;
  int n_clients = 10;
  int n_attackers = 1;
  int rounds = 12;
  // Clients sampled per round; 0 = all clients every round (the paper's
  // simplified rule; Fig 7 restores random selection).
  int clients_per_round = 0;
  int samples_per_class_train = 100;
  int samples_per_class_test = 30;
  int labels_per_client = 3;      // K-label non-IID distribution
  int samples_per_client = 0;     // 0 = even split
  double data_noise = 0.10;
  TrainConfig train;
  AttackSpec attack;
  // Distributed Backdoor Attack: split attack.pattern into one slice per
  // attacker; evaluation always uses the full pattern.
  bool dba = false;
  // L2 penalty applied to the last conv layer only (Fig 10).
  double last_conv_weight_decay = 0.0;
  ServerConfig server;
  // Wire fault injection + degraded-mode protocol knobs. With every rate at
  // zero (the default) the plain Network is used and results are
  // byte-identical to a build without the fault layer.
  comm::FaultConfig fault;
  // Retry/backoff/heartbeat knobs shared by the in-process retry protocol and
  // the socket transport.
  ProtocolConfig protocol;
  // Client storage engine; see ClientResidency.
  ClientResidency residency = ClientResidency::kAuto;
  // Virtual mode: resident-slab capacity (0 = derived from the cohort and
  // defense committee sizes). The per-round memory bound is
  // O(model · max_resident_clients), independent of n_clients.
  int max_resident_clients = 0;
  // Virtual mode: size of the deterministic strided committee that stands in
  // for "all clients" in the defense protocol (pruning reports, mask
  // broadcast, accuracy oracle). Materialized mode always uses all clients.
  int defense_clients = 64;
  // Aggregate round updates through the legacy buffer-everything path
  // instead of fl::StreamingAggregator. The two are bit-identical (tested);
  // the buffered path survives only as the equivalence-test reference.
  bool buffered_aggregation = false;
  std::uint64_t seed = 42;
  // Worker threads for the per-client round work and the batch-parallel
  // tensor kernels. 0 = hardware concurrency; the FEDCLEANSE_THREADS
  // environment variable overrides whatever is configured here. Results are
  // bit-identical for every thread count.
  int n_threads = 0;
};

// What one request→dispatch→collect exchange observed at the server, after
// all retries (filled by fl/protocol.h's exchange_with_retries).
struct ExchangeStats {
  int n_participants = 0;
  int n_valid = 0;      // clients that produced a valid report (possibly late)
  int n_dropped = 0;    // clients with no valid report after all retries
  int n_corrupted = 0;  // malformed/stale/mistyped messages skipped along the way
  int n_retried = 0;    // request retransmissions issued
  bool quorum_met = true;
};

struct RoundRecord {
  int round = 0;
  double test_acc = 0.0;
  double attack_acc = 0.0;
  // Degraded-mode bookkeeping for the round's update exchange. On a perfect
  // wire: n_valid == n_participants, everything else zero/true.
  int n_participants = 0;
  int n_valid = 0;
  int n_dropped = 0;
  int n_corrupted = 0;
  int n_retried = 0;
  bool quorum_met = true;
  // Client→server bytes this round's exchanges put on the wire (uplink
  // delta across run_round) — the observable the int8 update codec shrinks.
  std::uint64_t wire_bytes = 0;

  bool operator==(const RoundRecord&) const = default;
};

// RoundRecord / ExchangeStats ↔ bytes, for the run-snapshot format
// (fl/run_state.h).
void write_round_record(common::ByteWriter& w, const RoundRecord& rec);
RoundRecord read_round_record(common::ByteReader& r);
void write_exchange_stats(common::ByteWriter& w, const ExchangeStats& stats);
ExchangeStats read_exchange_stats(common::ByteReader& r);

class CheckpointManager;

class Simulation {
 public:
  // In-process simulation (the deterministic reference): every client lives
  // in this address space, wired over an in-memory Network.
  //
  // `remote_net` switches the server role to a remote deployment: the round
  // protocol runs over the given transport (not owned; typically a
  // SocketServerNetwork) and dispatch_clients is a no-op — the cohort trains
  // in other processes. The constructor still builds the full local client
  // population so the RNG draw sequence (data → server model → validation →
  // per-client models/seeds) matches the in-process reference draw for draw;
  // the replicas are simply never dispatched. Remote mode requires the
  // materialized engine and a fault-free config (real processes provide the
  // faults); checkpointing uses server-scope snapshots (DESIGN.md §18)
  // instead of the full-run format.
  explicit Simulation(SimulationConfig config, comm::Network* remote_net = nullptr);
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  // Run every remaining configured round, starting at completed_rounds()
  // (0 on a fresh simulation, the restored position after a resume). Appends
  // to history and, when a checkpoint manager is installed, writes a run
  // snapshot at every due round boundary.
  void run(bool record_history = true);
  // Run a single round; returns the participating client ids.
  std::vector<int> run_round(std::uint32_t round);
  // Run a single round over an explicit cohort (no selection draw) — the
  // defense's fine-tune stage uses this in virtual mode to keep cleansing on
  // the committee that actually received masks and rescaled learning rates.
  std::vector<int> run_round(std::uint32_t round, const std::vector<int>& participants);

  Server& server() { return *server_; }
  comm::Network& network() { return remote_net_ != nullptr ? *remote_net_ : *net_; }
  // The fault-injection wrapper, or nullptr when running on a perfect wire.
  comm::FaultyNetwork* faulty_network();
  // True when the round protocol runs over an external transport and the
  // local client replicas are RNG stand-ins only.
  bool remote() const { return remote_net_ != nullptr; }
  const SimulationConfig& config() const { return config_; }

  // --- clients --------------------------------------------------------------
  // Configured population size (NOT the number in memory; see
  // resident_clients()).
  int n_clients() const { return config_.n_clients; }
  // True when clients are derived lazily and only the sampled cohort is
  // resident.
  bool virtual_clients() const { return virtual_mode_; }
  // Clients currently materialized (== n_clients() in materialized mode).
  std::size_t resident_clients() const;
  // Access one client, materializing it first in virtual mode. The reference
  // stays valid until the next ensure_resident()/dispatch — do not hold it
  // across rounds in virtual mode.
  Client& client(int id);
  // Make every listed client resident (coordinating thread only). In virtual
  // mode this may evict unneeded residents — their RNG position, learning
  // rate, and masks persist in the ledger and survive re-materialization.
  void ensure_resident(const std::vector<int>& ids);

  // The simulation's execution context (also installed as the process-wide
  // ambient pool for the tensor kernels while this Simulation is alive).
  common::ThreadPool& pool() { return *pool_; }

  // Drain each listed client's pending server messages, one client per pool
  // task, sharded over contiguous blocks of the (sorted) cohort. Clients
  // share no mutable state (own model, data, RNG, channel), and the server's
  // collect loops fix the aggregation order afterwards, so the result is
  // identical to a serial drain.
  void dispatch_clients(const std::vector<int>& ids);

  const data::Dataset& test_set() const { return test_; }
  const data::Dataset& backdoor_testset() const { return backdoor_test_; }

  // Current global-model metrics.
  double test_accuracy();
  double attack_success();

  const std::vector<RoundRecord>& history() const { return history_; }
  // Stats of the most recent run_round() update exchange (perfect-wire
  // defaults before the first round).
  const ExchangeStats& last_round_stats() const { return last_round_stats_; }
  double training_seconds() const { return training_seconds_; }

  // Ids of all / malicious clients.
  std::vector<int> all_client_ids() const;
  std::vector<int> attacker_ids() const;
  // The client set the defense protocol addresses: every client when
  // materialized; a deterministic strided committee of defense_clients ids
  // in virtual mode (no RNG consumed — resume-neutral).
  std::vector<int> protocol_client_ids() const;

  // --- crash-resume (DESIGN.md §13) ----------------------------------------
  // Install a checkpoint manager (not owned; may be nullptr to detach). While
  // installed, run() snapshots the whole run at every due round boundary, and
  // the defense stages snapshot their own progress through the same manager.
  void set_checkpoint_manager(CheckpointManager* manager) { checkpoint_ = manager; }
  CheckpointManager* checkpoint_manager() { return checkpoint_; }
  // Training rounds finished so far (== the next round index run() will run).
  int completed_rounds() const { return next_round_; }

  // Serialize / restore everything that evolves after construction: round
  // position, RNG stream, round history, exchange stats, server (model +
  // reputation), the clients (every client when materialized; only the
  // resident cohort + eviction ledger in virtual mode — the rest re-derive
  // from the factory roots), and the network (queues, fault state). Must be
  // called at a round boundary — no client tasks running, wire quiescent.
  // restore_state expects a Simulation built from the *same* config and
  // throws CheckpointError on any structural mismatch.
  void save_state(common::ByteWriter& w) const;
  void restore_state(common::ByteReader& r);

  // --- distributed failover (DESIGN.md §18) --------------------------------
  // Server-node scope only: round cursor, protocol RNG stream, exchange
  // stats, round history, and the server (model + reputation). Excludes the
  // client replicas (rebuilt from config at restart; never dispatched in
  // remote mode) and the transport (live sockets cannot be snapshotted —
  // clients reconnect and are rolled back via kRoundSync). Unlike
  // save_state/restore_state, valid in remote mode; also usable in-process
  // (the unit tests do).
  void save_server_state(common::ByteWriter& w) const;
  void restore_server_state(common::ByteReader& r);

  // Snapshot epoch this run executes at: 0 until a resume installs a higher
  // one. Stamped into server-scope snapshots and the round-sync handshake.
  std::uint32_t run_epoch() const { return run_epoch_; }
  void set_run_epoch(std::uint32_t epoch) { run_epoch_ = epoch; }

 private:
  // Evicted-client state that must survive re-materialization. Everything
  // else a virtual client holds is a pure function of (run_seed, id) or is
  // re-synced from the global model at the next protocol step.
  struct ClientPersist {
    common::RngState rng{};
    double lr = 0.0;
    std::vector<std::vector<std::uint8_t>> prune_masks;
    std::vector<std::vector<std::uint8_t>> anticipated_masks;
  };

  // Direct storage access; the id must already be resident in virtual mode.
  Client& resident_client(int id);
  // Move client `id` out of the slab into the ledger (virtual mode).
  void evict(int id);
  // Build client `id` from the factory, re-applying any ledger state.
  void materialize(int id);
  std::size_t resident_capacity(std::size_t needed) const;

  SimulationConfig config_;
  comm::Network* remote_net_ = nullptr;  // not owned; null = in-process
  std::unique_ptr<common::ThreadPool> pool_;
  common::Rng rng_;
  data::Dataset test_;
  data::Dataset backdoor_test_;
  std::unique_ptr<comm::Network> net_;
  std::unique_ptr<Server> server_;
  // Materialized engine: the whole population, indexed by id.
  std::vector<Client> clients_;
  // Virtual engine: factory + pooled slab of resident clients + ledger.
  bool virtual_mode_ = false;
  std::unique_ptr<ClientFactory> factory_;
  std::vector<std::optional<Client>> slab_;
  std::vector<std::size_t> free_slots_;
  std::map<int, std::size_t> resident_;  // client id → slab slot
  std::map<int, ClientPersist> ledger_;
  std::vector<RoundRecord> history_;
  ExchangeStats last_round_stats_;
  double training_seconds_ = 0.0;
  int next_round_ = 0;
  std::uint32_t run_epoch_ = 0;
  CheckpointManager* checkpoint_ = nullptr;
};

}  // namespace fedcleanse::fl
