// End-to-end federated training simulation: synthesizes the dataset,
// partitions it non-IID, wires server and clients over the in-memory
// network, runs the round protocol (with attackers), and records per-round
// test accuracy and attack success rate.
//
// The defense pipeline (defense/pipeline.h) operates on a finished
// Simulation: it reuses the same clients for the pruning protocol and
// fine-tuning rounds.
#pragma once

#include <memory>
#include <vector>

#include "comm/fault_model.h"
#include "common/threadpool.h"
#include "common/timer.h"
#include "data/partition.h"
#include "data/synth.h"
#include "fl/client.h"
#include "fl/server.h"

namespace fedcleanse::comm {
class FaultyNetwork;
}

namespace fedcleanse::fl {

struct SimulationConfig {
  nn::Architecture arch = nn::Architecture::kMnistCnn;
  data::SynthKind dataset = data::SynthKind::kDigits;
  int n_clients = 10;
  int n_attackers = 1;
  int rounds = 12;
  // Clients sampled per round; 0 = all clients every round (the paper's
  // simplified rule; Fig 7 restores random selection).
  int clients_per_round = 0;
  int samples_per_class_train = 100;
  int samples_per_class_test = 30;
  int labels_per_client = 3;      // K-label non-IID distribution
  int samples_per_client = 0;     // 0 = even split
  double data_noise = 0.10;
  TrainConfig train;
  AttackSpec attack;
  // Distributed Backdoor Attack: split attack.pattern into one slice per
  // attacker; evaluation always uses the full pattern.
  bool dba = false;
  // L2 penalty applied to the last conv layer only (Fig 10).
  double last_conv_weight_decay = 0.0;
  ServerConfig server;
  // Wire fault injection + degraded-mode protocol knobs. With every rate at
  // zero (the default) the plain Network is used and results are
  // byte-identical to a build without the fault layer.
  comm::FaultConfig fault;
  std::uint64_t seed = 42;
  // Worker threads for the per-client round work and the batch-parallel
  // tensor kernels. 0 = hardware concurrency; the FEDCLEANSE_THREADS
  // environment variable overrides whatever is configured here. Results are
  // bit-identical for every thread count.
  int n_threads = 0;
};

// What one request→dispatch→collect exchange observed at the server, after
// all retries (filled by fl/protocol.h's exchange_with_retries).
struct ExchangeStats {
  int n_participants = 0;
  int n_valid = 0;      // clients that produced a valid report (possibly late)
  int n_dropped = 0;    // clients with no valid report after all retries
  int n_corrupted = 0;  // malformed/stale/mistyped messages skipped along the way
  int n_retried = 0;    // request retransmissions issued
  bool quorum_met = true;
};

struct RoundRecord {
  int round = 0;
  double test_acc = 0.0;
  double attack_acc = 0.0;
  // Degraded-mode bookkeeping for the round's update exchange. On a perfect
  // wire: n_valid == n_participants, everything else zero/true.
  int n_participants = 0;
  int n_valid = 0;
  int n_dropped = 0;
  int n_corrupted = 0;
  int n_retried = 0;
  bool quorum_met = true;

  bool operator==(const RoundRecord&) const = default;
};

// RoundRecord / ExchangeStats ↔ bytes, for the run-snapshot format
// (fl/run_state.h).
void write_round_record(common::ByteWriter& w, const RoundRecord& rec);
RoundRecord read_round_record(common::ByteReader& r);
void write_exchange_stats(common::ByteWriter& w, const ExchangeStats& stats);
ExchangeStats read_exchange_stats(common::ByteReader& r);

class CheckpointManager;

class Simulation {
 public:
  explicit Simulation(SimulationConfig config);
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  // Run every remaining configured round, starting at completed_rounds()
  // (0 on a fresh simulation, the restored position after a resume). Appends
  // to history and, when a checkpoint manager is installed, writes a run
  // snapshot at every due round boundary.
  void run(bool record_history = true);
  // Run a single round; returns the participating client ids.
  std::vector<int> run_round(std::uint32_t round);

  Server& server() { return *server_; }
  std::vector<Client>& clients() { return clients_; }
  comm::Network& network() { return *net_; }
  // The fault-injection wrapper, or nullptr when running on a perfect wire.
  comm::FaultyNetwork* faulty_network();
  const SimulationConfig& config() const { return config_; }

  // The simulation's execution context (also installed as the process-wide
  // ambient pool for the tensor kernels while this Simulation is alive).
  common::ThreadPool& pool() { return *pool_; }

  // Drain each listed client's pending server messages, one client per pool
  // task. Clients share no mutable state (own model, data, RNG, channel), and
  // the server's collect loops fix the aggregation order afterwards, so the
  // result is identical to a serial drain.
  void dispatch_clients(const std::vector<int>& ids);

  const data::Dataset& test_set() const { return test_; }
  const data::Dataset& backdoor_testset() const { return backdoor_test_; }

  // Current global-model metrics.
  double test_accuracy();
  double attack_success();

  const std::vector<RoundRecord>& history() const { return history_; }
  // Stats of the most recent run_round() update exchange (perfect-wire
  // defaults before the first round).
  const ExchangeStats& last_round_stats() const { return last_round_stats_; }
  double training_seconds() const { return training_seconds_; }

  // Ids of all / malicious clients.
  std::vector<int> all_client_ids() const;
  std::vector<int> attacker_ids() const;

  // --- crash-resume (DESIGN.md §13) ----------------------------------------
  // Install a checkpoint manager (not owned; may be nullptr to detach). While
  // installed, run() snapshots the whole run at every due round boundary, and
  // the defense stages snapshot their own progress through the same manager.
  void set_checkpoint_manager(CheckpointManager* manager) { checkpoint_ = manager; }
  CheckpointManager* checkpoint_manager() { return checkpoint_; }
  // Training rounds finished so far (== the next round index run() will run).
  int completed_rounds() const { return next_round_; }

  // Serialize / restore everything that evolves after construction: round
  // position, RNG stream, round history, exchange stats, server (model +
  // reputation), every client, and the network (queues, fault state). Must be
  // called at a round boundary — no client tasks running, wire quiescent.
  // restore_state expects a Simulation built from the *same* config and
  // throws CheckpointError on any structural mismatch.
  void save_state(common::ByteWriter& w) const;
  void restore_state(common::ByteReader& r);

 private:
  SimulationConfig config_;
  std::unique_ptr<common::ThreadPool> pool_;
  common::Rng rng_;
  data::Dataset test_;
  data::Dataset backdoor_test_;
  std::unique_ptr<comm::Network> net_;
  std::unique_ptr<Server> server_;
  std::vector<Client> clients_;
  std::vector<RoundRecord> history_;
  ExchangeStats last_round_stats_;
  double training_seconds_ = 0.0;
  int next_round_ = 0;
  CheckpointManager* checkpoint_ = nullptr;
};

}  // namespace fedcleanse::fl
