// Federated server: owns the global model, drives the round protocol over
// the comm network, aggregates updates, and answers the defense pipeline's
// needs (validation accuracy, rank/vote collection, mask broadcast).
#pragma once

#include <vector>

#include "comm/network.h"
#include "data/dataset.h"
#include "fl/aggregation.h"
#include "nn/model_zoo.h"

namespace fedcleanse::fl {

struct ServerConfig {
  // Global learning rate η applied to the aggregated update (the paper's
  // simplified rule uses 1).
  double global_lr = 1.0;
  AggregatorKind aggregator = AggregatorKind::kFedAvg;
  // Robustness parameter f for the Byzantine-robust aggregators.
  int byzantine_hint = 0;
};

class Server {
 public:
  Server(nn::ModelSpec model, data::Dataset validation, comm::Network& net,
         ServerConfig config = {});

  nn::ModelSpec& model() { return model_; }
  const data::Dataset& validation_set() const { return validation_; }
  std::vector<float> params() const { return model_.net.get_flat(); }
  void set_params(std::span<const float> params) { model_.net.set_flat(params); }

  // --- training round -------------------------------------------------------
  // Send the current global model to the given clients.
  void broadcast_model(const std::vector<int>& clients, std::uint32_t round);
  // Collect one update message from each client (they must have replied).
  std::vector<std::vector<float>> collect_updates(const std::vector<int>& clients);
  // ω_{t+1} = ω_t + η·aggregate(Δω).
  void apply_aggregate(const std::vector<std::vector<float>>& updates);

  // --- defense protocol -----------------------------------------------------
  void request_ranks(const std::vector<int>& clients, std::uint32_t round);
  std::vector<std::vector<std::uint32_t>> collect_ranks(const std::vector<int>& clients);
  void request_votes(const std::vector<int>& clients, double prune_rate,
                     std::uint32_t round);
  std::vector<std::vector<std::uint8_t>> collect_votes(const std::vector<int>& clients);
  void broadcast_masks(const std::vector<int>& clients, std::uint32_t round);
  void request_accuracies(const std::vector<int>& clients, std::uint32_t round);
  std::vector<double> collect_accuracies(const std::vector<int>& clients);

  // Accuracy of the current global model on the server's validation set.
  double validation_accuracy();

 private:
  nn::ModelSpec model_;
  data::Dataset validation_;
  comm::Network& net_;
  ServerConfig config_;
};

}  // namespace fedcleanse::fl
