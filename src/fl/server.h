// Federated server: owns the global model, drives the round protocol over
// the comm network, aggregates updates, and answers the defense pipeline's
// needs (validation accuracy, rank/vote collection, mask broadcast).
//
// The collect paths are fault-tolerant: every collect_* returns one
// std::optional per requested client (nullopt = no valid reply before the
// deadline), logs the offending client id and received message type for
// anything mistyped, stale, or undecodable, and never blocks forever or
// throws on malformed client bytes. Quorum gating and retries live one layer
// up (fl/protocol.h), where the caller can re-drive the request.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "comm/network.h"
#include "data/dataset.h"
#include "fl/aggregation.h"
#include "fl/reputation.h"
#include "nn/model_zoo.h"

namespace fedcleanse::fl {

struct ServerConfig {
  // Global learning rate η applied to the aggregated update (the paper's
  // simplified rule uses 1).
  double global_lr = 1.0;
  AggregatorKind aggregator = AggregatorKind::kFedAvg;
  // Robustness parameter f for the Byzantine-robust aggregators.
  int byzantine_hint = 0;
  // Per-client deadline for collect_* receives. Simulation keeps this in sync
  // with FaultConfig::recv_timeout_ms; on a perfect wire replies are already
  // queued when the server collects, so the deadline never actually elapses.
  int recv_timeout_ms = 25;
  // Weight training-round aggregates by cosine-similarity reputation
  // (fl/reputation.h) instead of the configured aggregator. Reputation
  // carries state across rounds, so run snapshots include the scores.
  bool use_reputation = false;
  double reputation_decay = 0.8;
  double reputation_penalty_threshold = 0.0;
};

// What a collect pass observed, from the protocol's point of view.
struct CollectStats {
  int n_valid = 0;      // clients whose reply decoded and validated
  int n_timed_out = 0;  // clients with no usable reply before the deadline
  int n_malformed = 0;  // messages skipped: undecodable, mistyped, or stale
};

class Server {
 public:
  Server(nn::ModelSpec model, data::Dataset validation, comm::Network& net,
         ServerConfig config = {});

  nn::ModelSpec& model() { return model_; }
  const data::Dataset& validation_set() const { return validation_; }
  std::vector<float> params() const { return model_.net.get_flat(); }
  void set_params(std::span<const float> params) { model_.net.set_flat(params); }

  // Deadline knob, exposed so the retry layer can apply capped backoff.
  int recv_timeout_ms() const { return config_.recv_timeout_ms; }
  void set_recv_timeout_ms(int ms) { config_.recv_timeout_ms = ms; }

  // --- training round -------------------------------------------------------
  // Send the current global model to the given clients.
  void broadcast_model(const std::vector<int>& clients, std::uint32_t round);
  // One slot per requested client: the decoded update, or nullopt if the
  // client timed out or replied malformed.
  std::vector<std::optional<std::vector<float>>> collect_updates(
      const std::vector<int>& clients, std::uint32_t round, CollectStats* stats = nullptr);
  // ω_{t+1} = ω_t + η·aggregate(Δω) over whichever updates arrived.
  void apply_aggregate(const std::vector<std::vector<float>>& updates);
  // Apply an already-aggregated update (fl::StreamingAggregator's fold
  // output): ω_{t+1} = ω_t + η·aggregated. Bit-identical to apply_aggregate
  // over the same updates because the streaming fold replicates mean_update's
  // accumulation order exactly.
  void apply_update(const std::vector<float>& aggregated);
  // Same, but with the sender ids — required for the reputation path, which
  // tracks per-client scores. Falls back to the configured aggregator when
  // reputation weighting is off.
  void apply_aggregate(const std::vector<int>& client_ids,
                       const std::vector<std::vector<float>>& updates);

  // The reputation tracker, or nullptr when ServerConfig::use_reputation is
  // off.
  const ReputationAggregator* reputation() const { return reputation_.get(); }

  // --- defense protocol -----------------------------------------------------
  void request_ranks(const std::vector<int>& clients, std::uint32_t round);
  std::vector<std::optional<std::vector<std::uint32_t>>> collect_ranks(
      const std::vector<int>& clients, std::uint32_t round, CollectStats* stats = nullptr);
  void request_votes(const std::vector<int>& clients, double prune_rate,
                     std::uint32_t round);
  std::vector<std::optional<std::vector<std::uint8_t>>> collect_votes(
      const std::vector<int>& clients, std::uint32_t round, CollectStats* stats = nullptr);
  void broadcast_masks(const std::vector<int>& clients, std::uint32_t round);
  // Tell the clients to multiply their local learning rate by `factor` (the
  // defense's fine-tune rescale, delivered over the wire in remote mode). No
  // acknowledgement — like masks, a lost copy degrades rather than blocks.
  void broadcast_lr_scale(const std::vector<int>& clients, double factor,
                          std::uint32_t round);
  void request_accuracies(const std::vector<int>& clients, std::uint32_t round);
  std::vector<std::optional<double>> collect_accuracies(const std::vector<int>& clients,
                                                        std::uint32_t round,
                                                        CollectStats* stats = nullptr);

  // --- failover protocol (DESIGN.md §18) ------------------------------------
  // Tell every client to roll back to its snapshot for `next_round` and adopt
  // the resumed server's epoch; clients reply kRoundSyncAck echoing the
  // payload. Sent before the resumed run replays, so FIFO per-connection
  // ordering guarantees the rollback precedes any rebroadcast.
  void broadcast_round_sync(const std::vector<int>& clients, std::uint32_t epoch,
                            std::int32_t next_round);
  // Acks whose (epoch, next_round) match; a mismatched ack (stale generation)
  // is rejected as malformed via comm::EpochError and counted in `stats`.
  std::vector<std::optional<comm::RoundSync>> collect_round_sync_acks(
      const std::vector<int>& clients, std::uint32_t epoch, std::int32_t next_round,
      CollectStats* stats = nullptr);

  // Accuracy of the current global model on the server's validation set.
  double validation_accuracy();

  // Checkpoint support: global model plus reputation scores (when enabled).
  // restore_state expects a server built from the same configuration and
  // throws CheckpointError on architecture or reputation-shape mismatch.
  void save_state(common::ByteWriter& w) const;
  void restore_state(common::ByteReader& r);

 private:
  nn::ModelSpec model_;
  data::Dataset validation_;
  comm::Network& net_;
  ServerConfig config_;
  std::unique_ptr<ReputationAggregator> reputation_;
};

}  // namespace fedcleanse::fl
