// Virtual clients: derive a client's entire identity — label assignment,
// dataset view, RNG stream, attacker role — lazily from (run_seed, client_id)
// at selection time, so a population of a million clients costs nothing until
// a client is actually sampled into a round's cohort (DESIGN.md §14).
//
// The factory owns the full synthesized training pool, the per-label sample
// pools (shuffled once from the partition seed), one template model replica,
// and three seed roots drawn from the simulation RNG at construction. Every
// per-client quantity is a pure function of (root, id): materialize → evict →
// re-materialize yields the same client every time, which is what lets the
// run snapshot store only the resident cohort plus the factory roots instead
// of N clients.
//
// A virtual population is NOT sample-for-sample identical to the eager
// partition_k_label() assignment (which walks shared per-label cursors in
// client order — inherently O(N) and order-coupled). Small populations
// default to the materialized path precisely so existing runs stay
// byte-identical; virtual mode is a different, self-consistent universe.
#pragma once

#include <cstdint>
#include <vector>

#include "data/backdoor.h"
#include "data/dataset.h"
#include "fl/client.h"

namespace fedcleanse::fl {

struct SimulationConfig;

class ClientFactory {
 public:
  // `full_train` is the complete synthesized training pool; `template_model`
  // provides the architecture (weights are irrelevant: every protocol
  // operation syncs to the global parameters before use). `partition_seed`
  // shuffles the per-label pools; the three roots salt the per-client
  // derivations.
  ClientFactory(const SimulationConfig& config, data::Dataset full_train,
                nn::ModelSpec template_model, std::uint64_t partition_seed,
                std::uint64_t label_root, std::uint64_t data_root,
                std::uint64_t seed_root);

  // Build client `id` from scratch: O(samples_per_client), independent of N
  // and of every other client.
  Client make_client(int id) const;

  // The sorted label set client `id` draws its local data from.
  std::vector<int> client_labels(int id) const;

  int samples_per_client() const { return samples_per_client_; }

 private:
  const SimulationConfig& config_;
  data::Dataset full_train_;
  nn::ModelSpec template_model_;
  std::vector<data::BackdoorPattern> dba_patterns_;
  std::vector<std::vector<std::size_t>> label_pools_;  // per label, shuffled
  int samples_per_client_ = 0;
  std::uint64_t label_root_ = 0;
  std::uint64_t data_root_ = 0;
  std::uint64_t seed_root_ = 0;
};

}  // namespace fedcleanse::fl
