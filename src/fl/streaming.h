// Streaming aggregation of training-round updates (DESIGN.md §14).
//
// The materialized path buffers every cohort update and then runs
// mean_update(): O(cohort · model) memory. The streaming path folds each
// update into a single O(model) accumulator the moment it clears the
// exchange's checksum/quorum accounting — in the SAME order the materialized
// path would have summed it, so the result is bit-identical float for float.
//
// Fold-order argument: mean_update() sums the compacted update list in
// vector order, which is the participants' *position* order (the exchange
// compacts by position, not arrival). StreamingMeanAccumulator therefore
// keys every accepted update by its participant position, folds the
// contiguous received prefix immediately, and parks out-of-order arrivals
// (retry stragglers on a lossy wire) in a position-keyed reorder buffer that
// finalize() drains in ascending position order. Folds thus always happen in
// ascending position order — the materialized order — while the buffer stays
// empty on a perfect wire (every reply arrives in position order within one
// attempt), keeping the steady state O(model).
#pragma once

#include <cstddef>
#include <map>
#include <utility>
#include <vector>

#include "fl/aggregation.h"

namespace fedcleanse::fl {

// Position-ordered streaming mean over float update vectors. Bit-identical
// to mean_update() applied to the same updates compacted in position order:
// zero-initialized accumulator, += folds in ascending position, final scale
// by 1.0f / float(n).
class StreamingMeanAccumulator {
 public:
  explicit StreamingMeanAccumulator(std::size_t n_positions);

  // Accept the update from participant position `position` (at most once per
  // position — the exchange retires a position after its first valid reply).
  void accept(std::size_t position, std::vector<float> update);

  std::size_t accepted() const { return n_accepted_; }
  std::size_t buffered() const { return buffer_.size(); }

  // Drain the reorder buffer and return the mean. Throws Error when no
  // update was accepted (the caller's quorum gate normally prevents this).
  std::vector<float> finalize();

 private:
  void fold(const std::vector<float>& update);

  std::size_t n_positions_;
  std::size_t next_ = 0;  // positions < next_ have been folded or skipped
  std::size_t n_accepted_ = 0;
  std::vector<float> acc_;
  std::map<std::size_t, std::vector<float>> buffer_;  // out-of-order arrivals
};

// Round-level aggregation policy. kFold streams every update into the
// O(model) mean accumulator (valid whenever the configured rule is plain
// FedAvg without reputation weighting — the only rule whose result is a
// position-ordered sum). kRetain keeps the cohort's updates, compacted in
// position order at finalize, for the rules that need the full update set
// (robust aggregators, reputation weighting): O(cohort · model), but the
// cohort — not the population — bounds it.
class StreamingAggregator {
 public:
  enum class Mode { kFold, kRetain };

  static Mode mode_for(AggregatorKind kind, bool use_reputation) {
    return (kind == AggregatorKind::kFedAvg && !use_reputation) ? Mode::kFold
                                                                : Mode::kRetain;
  }

  StreamingAggregator(Mode mode, std::size_t n_positions);

  Mode mode() const { return mode_; }
  std::size_t accepted() const { return n_accepted_; }

  void accept(std::size_t position, std::vector<float> update);

  // kFold only: the streamed mean (== aggregate(kFedAvg, updates, ·)).
  std::vector<float> finalize_mean();
  // kRetain only: the updates compacted in ascending position order —
  // exactly the `values` the materialized exchange would have returned.
  std::vector<std::vector<float>> finalize_retained();

 private:
  Mode mode_;
  std::size_t n_accepted_ = 0;
  StreamingMeanAccumulator mean_;
  std::map<std::size_t, std::vector<float>> retained_;
};

}  // namespace fedcleanse::fl
