// Helpers for staging the paper's adaptive attacks (§VI-B).
//
// The attacker-side behaviours themselves live in Client (rank/vote
// manipulation, pruning-aware training, self-adjusted weights); this module
// provides the orchestration glue the ablation experiments need.
#pragma once

#include <vector>

#include "fl/simulation.h"

namespace fedcleanse::fl {

// Predict the pruning mask a defender would produce, from the *attacker's*
// standpoint: run the honest activation-ranking procedure over the given
// clients' local data and mark the bottom `prune_rate` fraction of neurons
// at the pruning layer as pruned. Used to arm kPruneAware attackers
// (Attack 2 assumes the attacker somehow obtained the final pruning mask).
std::vector<std::vector<std::uint8_t>> anticipate_prune_masks(Simulation& sim,
                                                              double prune_rate);

// Arm every attacker in the simulation with the anticipated masks.
void arm_prune_aware_attackers(Simulation& sim, double prune_rate);

}  // namespace fedcleanse::fl
