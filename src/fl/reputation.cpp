#include "fl/reputation.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace fedcleanse::fl {

double cosine_similarity(std::span<const float> a, std::span<const float> b) {
  FC_REQUIRE(a.size() == b.size(), "cosine similarity needs equal-length vectors");
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  const double denom = std::sqrt(na) * std::sqrt(nb);
  return denom < 1e-30 ? 0.0 : dot / denom;
}

ReputationAggregator::ReputationAggregator(int n_clients, double decay,
                                           double penalty_threshold)
    : reputation_(static_cast<std::size_t>(n_clients), 1.0),
      decay_(decay),
      penalty_threshold_(penalty_threshold) {
  FC_REQUIRE(n_clients > 0, "need at least one client");
  FC_REQUIRE(decay > 0.0 && decay <= 1.0, "decay must be in (0,1]");
}

double ReputationAggregator::reputation(int client) const {
  FC_REQUIRE(client >= 0 && client < static_cast<int>(reputation_.size()),
             "client id out of range");
  return reputation_[static_cast<std::size_t>(client)];
}

void ReputationAggregator::restore_scores(const std::vector<double>& scores) {
  if (scores.size() != reputation_.size()) {
    throw CheckpointError("reputation snapshot has " + std::to_string(scores.size()) +
                          " scores, expected " + std::to_string(reputation_.size()));
  }
  reputation_ = scores;
}

std::vector<float> ReputationAggregator::aggregate(
    const std::vector<int>& client_ids, const std::vector<std::vector<float>>& updates) {
  FC_REQUIRE(!updates.empty(), "no updates to aggregate");
  FC_REQUIRE(client_ids.size() == updates.size(), "ids/updates misaligned");
  const std::size_t n = updates.size();
  const std::size_t dim = updates.front().size();
  for (const auto& u : updates) FC_REQUIRE(u.size() == dim, "update dimension mismatch");

  // Mean pairwise cosine similarity per update (credibility this round).
  std::vector<double> credibility(n, 1.0);
  if (n > 1) {
    for (std::size_t i = 0; i < n; ++i) {
      double total = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        if (j != i) total += cosine_similarity(updates[i], updates[j]);
      }
      credibility[i] = total / static_cast<double>(n - 1);
    }
  }

  // Reputation update: exponential smoothing toward this round's verdict.
  for (std::size_t i = 0; i < n; ++i) {
    const int id = client_ids[i];
    FC_REQUIRE(id >= 0 && id < static_cast<int>(reputation_.size()),
               "client id out of range");
    const double verdict = credibility[i] > penalty_threshold_ ? 1.0 : 0.0;
    auto& rep = reputation_[static_cast<std::size_t>(id)];
    rep = decay_ * rep + (1.0 - decay_) * verdict;
  }

  // Reputation-weighted mean.
  double weight_total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    weight_total += reputation_[static_cast<std::size_t>(client_ids[i])];
  }
  std::vector<float> out(dim, 0.0f);
  if (weight_total < 1e-12) return out;  // everyone muted: no movement
  for (std::size_t i = 0; i < n; ++i) {
    const float w = static_cast<float>(
        reputation_[static_cast<std::size_t>(client_ids[i])] / weight_total);
    for (std::size_t d = 0; d < dim; ++d) out[d] += w * updates[i][d];
  }
  return out;
}

}  // namespace fedcleanse::fl
