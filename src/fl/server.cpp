#include "fl/server.h"

#include "fl/metrics.h"

namespace fedcleanse::fl {

namespace {
comm::Message server_message(comm::MessageType type, std::uint32_t round,
                             std::vector<std::uint8_t> payload) {
  comm::Message m;
  m.type = type;
  m.round = round;
  m.sender = -1;
  m.payload = std::move(payload);
  return m;
}
}  // namespace

Server::Server(nn::ModelSpec model, data::Dataset validation, comm::Network& net,
               ServerConfig config)
    : model_(std::move(model)),
      validation_(std::move(validation)),
      net_(net),
      config_(config) {}

void Server::broadcast_model(const std::vector<int>& clients, std::uint32_t round) {
  const auto payload = comm::encode_flat_params(params());
  for (int c : clients) {
    net_.send_to_client(c, server_message(comm::MessageType::kModelBroadcast, round, payload));
  }
}

std::vector<std::vector<float>> Server::collect_updates(const std::vector<int>& clients) {
  std::vector<std::vector<float>> updates;
  updates.reserve(clients.size());
  for (int c : clients) {
    auto msg = net_.recv_from_client(c);
    FC_REQUIRE(msg.type == comm::MessageType::kModelUpdate,
               "expected ModelUpdate, got " + std::string(comm::message_type_name(msg.type)));
    auto update = comm::decode_flat_params(msg.payload);
    FC_REQUIRE(update.size() == model_.net.num_params(),
               "client update has the wrong parameter count");
    updates.push_back(std::move(update));
  }
  return updates;
}

void Server::apply_aggregate(const std::vector<std::vector<float>>& updates) {
  auto agg = aggregate(config_.aggregator, updates, config_.byzantine_hint);
  auto current = params();
  const float lr = static_cast<float>(config_.global_lr);
  for (std::size_t i = 0; i < current.size(); ++i) current[i] += lr * agg[i];
  set_params(current);
}

void Server::request_ranks(const std::vector<int>& clients, std::uint32_t round) {
  const auto payload = comm::encode_flat_params(params());
  for (int c : clients) {
    net_.send_to_client(c, server_message(comm::MessageType::kRankRequest, round, payload));
  }
}

std::vector<std::vector<std::uint32_t>> Server::collect_ranks(
    const std::vector<int>& clients) {
  std::vector<std::vector<std::uint32_t>> reports;
  reports.reserve(clients.size());
  for (int c : clients) {
    auto msg = net_.recv_from_client(c);
    FC_REQUIRE(msg.type == comm::MessageType::kRankReport, "expected RankReport");
    reports.push_back(comm::decode_ranks(msg.payload));
  }
  return reports;
}

void Server::request_votes(const std::vector<int>& clients, double prune_rate,
                           std::uint32_t round) {
  common::ByteWriter w;
  w.write_f64(prune_rate);
  w.write_f32_vector(params());
  const auto payload = w.take();
  for (int c : clients) {
    net_.send_to_client(c, server_message(comm::MessageType::kVoteRequest, round, payload));
  }
}

std::vector<std::vector<std::uint8_t>> Server::collect_votes(
    const std::vector<int>& clients) {
  std::vector<std::vector<std::uint8_t>> reports;
  reports.reserve(clients.size());
  for (int c : clients) {
    auto msg = net_.recv_from_client(c);
    FC_REQUIRE(msg.type == comm::MessageType::kVoteReport, "expected VoteReport");
    reports.push_back(comm::decode_votes(msg.payload));
  }
  return reports;
}

void Server::broadcast_masks(const std::vector<int>& clients, std::uint32_t round) {
  const auto payload = comm::encode_masks(model_.net.prune_masks());
  for (int c : clients) {
    net_.send_to_client(c, server_message(comm::MessageType::kMaskBroadcast, round, payload));
  }
}

void Server::request_accuracies(const std::vector<int>& clients, std::uint32_t round) {
  const auto payload = comm::encode_flat_params(params());
  for (int c : clients) {
    net_.send_to_client(c,
                        server_message(comm::MessageType::kAccuracyRequest, round, payload));
  }
}

std::vector<double> Server::collect_accuracies(const std::vector<int>& clients) {
  std::vector<double> out;
  out.reserve(clients.size());
  for (int c : clients) {
    auto msg = net_.recv_from_client(c);
    FC_REQUIRE(msg.type == comm::MessageType::kAccuracyReport, "expected AccuracyReport");
    out.push_back(comm::decode_accuracy(msg.payload));
  }
  return out;
}

double Server::validation_accuracy() {
  return evaluate_accuracy(model_.net, validation_);
}

}  // namespace fedcleanse::fl
