#include "fl/server.h"

#include <chrono>

#include "common/logging.h"
#include "fl/metrics.h"
#include "nn/checkpoint.h"

namespace fedcleanse::fl {

namespace {

comm::Message server_message(comm::MessageType type, std::uint32_t round,
                             std::vector<std::uint8_t> payload) {
  comm::Message m;
  m.type = type;
  m.round = round;
  m.sender = -1;
  m.correlation = comm::current_correlation_id();
  m.payload = std::move(payload);
  m.stamp();
  return m;
}

// Drain one client's channel until a valid reply of the expected type and
// round appears or the deadline passes. Mistyped, stale, duplicate, and
// undecodable messages are logged (with the client id and the type actually
// received) and skipped — a degraded round must be debuggable from the log
// alone. `decode` parses *and validates* the payload, throwing
// comm::DecodeError on anything unacceptable.
// `expected_alt` admits a second message type for protocols with two wire
// encodings of the same reply (float vs quantized model updates); the decode
// callback dispatches on msg.type.
template <typename T, typename Decode>
std::vector<std::optional<T>> collect_typed(comm::Network& net,
                                            const std::vector<int>& clients,
                                            std::uint32_t round,
                                            comm::MessageType expected, Decode decode,
                                            int timeout_ms, CollectStats* stats,
                                            std::optional<comm::MessageType> expected_alt =
                                                std::nullopt) {
  using Clock = std::chrono::steady_clock;
  std::vector<std::optional<T>> out(clients.size());
  CollectStats local;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    const int c = clients[i];
    const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
    while (true) {
      auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - Clock::now());
      if (remaining.count() < 0) remaining = std::chrono::milliseconds(0);
      auto msg = net.recv_from_client_for(c, remaining);
      if (!msg) {
        ++local.n_timed_out;
        FC_LOG(Debug) << "collect " << comm::message_type_name(expected) << ": client "
                      << c << " sent no reply before the deadline (round " << round << ")";
        break;
      }
      if ((msg->type != expected && msg->type != expected_alt) || msg->round != round) {
        ++local.n_malformed;
        FC_LOG(Warn) << "collect " << comm::message_type_name(expected) << " (round "
                     << round << "): client " << c << " sent "
                     << comm::message_type_name(msg->type) << " for round " << msg->round
                     << " — skipped";
        continue;  // keep draining; the real reply may be queued behind it
      }
      if (!msg->checksum_ok()) {
        ++local.n_malformed;
        FC_LOG(Warn) << "collect " << comm::message_type_name(expected) << " (round "
                     << round << "): client " << c << " sent a "
                     << comm::message_type_name(msg->type)
                     << " whose payload fails its checksum — skipped";
        continue;
      }
      try {
        out[i] = decode(*msg);
        ++local.n_valid;
        break;
      } catch (const SerializationError& e) {
        ++local.n_malformed;
        FC_LOG(Warn) << "collect " << comm::message_type_name(expected) << " (round "
                     << round << "): client " << c << " sent an undecodable "
                     << comm::message_type_name(msg->type) << ": " << e.what();
        continue;
      }
    }
  }
  if (stats != nullptr) {
    stats->n_valid += local.n_valid;
    stats->n_timed_out += local.n_timed_out;
    stats->n_malformed += local.n_malformed;
  }
  return out;
}

}  // namespace

Server::Server(nn::ModelSpec model, data::Dataset validation, comm::Network& net,
               ServerConfig config)
    : model_(std::move(model)),
      validation_(std::move(validation)),
      net_(net),
      config_(config) {
  if (config_.use_reputation) {
    reputation_ = std::make_unique<ReputationAggregator>(
        net_.n_clients(), config_.reputation_decay, config_.reputation_penalty_threshold);
  }
}

void Server::broadcast_model(const std::vector<int>& clients, std::uint32_t round) {
  const auto payload = comm::encode_flat_params(params());
  for (int c : clients) {
    net_.send_to_client(c, server_message(comm::MessageType::kModelBroadcast, round, payload));
  }
}

std::vector<std::optional<std::vector<float>>> Server::collect_updates(
    const std::vector<int>& clients, std::uint32_t round, CollectStats* stats) {
  const std::size_t n_params = model_.net.num_params();
  // Clients pick their wire codec; the server accepts either and folds the
  // dequantized floats into the same aggregation path (the fp32 wire stays
  // byte-identical to the pre-codec protocol).
  return collect_typed<std::vector<float>>(
      net_, clients, round, comm::MessageType::kModelUpdate,
      [n_params](const comm::Message& msg) {
        auto update = msg.type == comm::MessageType::kModelUpdateQuantized
                          ? comm::decode_flat_params_q8(msg.payload)
                          : comm::decode_flat_params(msg.payload);
        if (update.size() != n_params) {
          throw comm::DecodeError("update has " + std::to_string(update.size()) +
                                  " params, model has " + std::to_string(n_params));
        }
        return update;
      },
      config_.recv_timeout_ms, stats, comm::MessageType::kModelUpdateQuantized);
}

namespace {
void apply_delta(Server& server, const std::vector<float>& agg, double global_lr) {
  auto current = server.params();
  const float lr = static_cast<float>(global_lr);
  for (std::size_t i = 0; i < current.size(); ++i) current[i] += lr * agg[i];
  server.set_params(current);
}
}  // namespace

void Server::apply_aggregate(const std::vector<std::vector<float>>& updates) {
  apply_delta(*this, aggregate(config_.aggregator, updates, config_.byzantine_hint),
              config_.global_lr);
}

void Server::apply_update(const std::vector<float>& aggregated) {
  apply_delta(*this, aggregated, config_.global_lr);
}

void Server::apply_aggregate(const std::vector<int>& client_ids,
                             const std::vector<std::vector<float>>& updates) {
  if (reputation_ == nullptr) {
    apply_aggregate(updates);
    return;
  }
  apply_delta(*this, reputation_->aggregate(client_ids, updates), config_.global_lr);
}

void Server::request_ranks(const std::vector<int>& clients, std::uint32_t round) {
  const auto payload = comm::encode_flat_params(params());
  for (int c : clients) {
    net_.send_to_client(c, server_message(comm::MessageType::kRankRequest, round, payload));
  }
}

std::vector<std::optional<std::vector<std::uint32_t>>> Server::collect_ranks(
    const std::vector<int>& clients, std::uint32_t round, CollectStats* stats) {
  return collect_typed<std::vector<std::uint32_t>>(
      net_, clients, round, comm::MessageType::kRankReport,
      [](const comm::Message& msg) { return comm::decode_ranks(msg.payload); },
      config_.recv_timeout_ms, stats);
}

void Server::request_votes(const std::vector<int>& clients, double prune_rate,
                           std::uint32_t round) {
  common::ByteWriter w;
  w.write_f64(prune_rate);
  w.write_f32_vector(params());
  const auto payload = w.take();
  for (int c : clients) {
    net_.send_to_client(c, server_message(comm::MessageType::kVoteRequest, round, payload));
  }
}

std::vector<std::optional<std::vector<std::uint8_t>>> Server::collect_votes(
    const std::vector<int>& clients, std::uint32_t round, CollectStats* stats) {
  return collect_typed<std::vector<std::uint8_t>>(
      net_, clients, round, comm::MessageType::kVoteReport,
      [](const comm::Message& msg) { return comm::decode_votes(msg.payload); },
      config_.recv_timeout_ms, stats);
}

void Server::broadcast_masks(const std::vector<int>& clients, std::uint32_t round) {
  const auto payload = comm::encode_masks(model_.net.prune_masks());
  for (int c : clients) {
    net_.send_to_client(c, server_message(comm::MessageType::kMaskBroadcast, round, payload));
  }
}

void Server::broadcast_lr_scale(const std::vector<int>& clients, double factor,
                                std::uint32_t round) {
  const auto payload = comm::encode_lr_scale(factor);
  for (int c : clients) {
    net_.send_to_client(c, server_message(comm::MessageType::kLrScale, round, payload));
  }
}

void Server::request_accuracies(const std::vector<int>& clients, std::uint32_t round) {
  const auto payload = comm::encode_flat_params(params());
  for (int c : clients) {
    net_.send_to_client(c,
                        server_message(comm::MessageType::kAccuracyRequest, round, payload));
  }
}

std::vector<std::optional<double>> Server::collect_accuracies(
    const std::vector<int>& clients, std::uint32_t round, CollectStats* stats) {
  return collect_typed<double>(
      net_, clients, round, comm::MessageType::kAccuracyReport,
      [](const comm::Message& msg) {
        const double acc = comm::decode_accuracy(msg.payload);
        if (!(acc >= 0.0 && acc <= 1.0)) {
          throw comm::DecodeError("accuracy " + std::to_string(acc) +
                                  " outside [0, 1]");
        }
        return acc;
      },
      config_.recv_timeout_ms, stats);
}

void Server::broadcast_round_sync(const std::vector<int>& clients, std::uint32_t epoch,
                                  std::int32_t next_round) {
  comm::RoundSync sync;
  sync.epoch = epoch;
  sync.next_round = next_round;
  const auto payload = comm::encode_round_sync(sync);
  const auto round = static_cast<std::uint32_t>(next_round);
  for (int c : clients) {
    net_.send_to_client(c, server_message(comm::MessageType::kRoundSync, round, payload));
  }
}

std::vector<std::optional<comm::RoundSync>> Server::collect_round_sync_acks(
    const std::vector<int>& clients, std::uint32_t epoch, std::int32_t next_round,
    CollectStats* stats) {
  return collect_typed<comm::RoundSync>(
      net_, clients, static_cast<std::uint32_t>(next_round),
      comm::MessageType::kRoundSyncAck,
      [epoch, next_round](const comm::Message& msg) {
        const comm::RoundSync ack = comm::decode_round_sync(msg.payload);
        if (ack.epoch != epoch || ack.next_round != next_round) {
          throw comm::EpochError("round_sync ack for epoch " + std::to_string(ack.epoch) +
                                 " round " + std::to_string(ack.next_round) +
                                 ", expected epoch " + std::to_string(epoch) + " round " +
                                 std::to_string(next_round));
        }
        return ack;
      },
      config_.recv_timeout_ms, stats);
}

double Server::validation_accuracy() {
  return evaluate_accuracy(model_.net, validation_);
}

void Server::save_state(common::ByteWriter& w) const {
  w.write_u8_vector(nn::save_model(model_));
  w.write_bool(reputation_ != nullptr);
  if (reputation_ != nullptr) {
    const auto& scores = reputation_->reputations();
    w.write_u32(static_cast<std::uint32_t>(scores.size()));
    for (double s : scores) w.write_f64(s);
  }
}

void Server::restore_state(common::ByteReader& r) {
  auto loaded = nn::load_model(r.read_u8_vector());
  if (loaded.arch != model_.arch) {
    throw CheckpointError("server snapshot holds a different architecture");
  }
  model_ = std::move(loaded);
  const bool has_reputation = r.read_bool();
  if (has_reputation != (reputation_ != nullptr)) {
    throw CheckpointError("snapshot and configuration disagree on reputation weighting");
  }
  if (has_reputation) {
    const std::uint32_t n = r.read_u32();
    std::vector<double> scores;
    scores.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) scores.push_back(r.read_f64());
    reputation_->restore_scores(scores);
  }
}

}  // namespace fedcleanse::fl
