#include "fl/simulation.h"

#include <algorithm>
#include <set>

#include "comm/faulty_network.h"
#include "common/logging.h"
#include "common/sysinfo.h"
#include "fl/client_factory.h"
#include "fl/metrics.h"
#include "fl/protocol.h"
#include "fl/run_state.h"
#include "fl/streaming.h"
#include "obs/journal.h"
#include "obs/trace.h"

namespace fedcleanse::fl {

namespace {
// kAuto flips to the virtual engine only at this population size and above:
// below it the eager engine is cheap, and keeping it the default preserves
// byte-identical results for every pre-existing configuration.
constexpr int kVirtualAutoThreshold = 4096;
}  // namespace

Simulation::Simulation(SimulationConfig config, comm::Network* remote_net)
    : config_(std::move(config)),
      remote_net_(remote_net),
      pool_(std::make_unique<common::ThreadPool>(
          common::resolve_n_threads(static_cast<std::size_t>(
              config_.n_threads < 0 ? 0 : config_.n_threads)))),
      rng_(config_.seed) {
  common::set_ambient_pool(pool_.get());
  FC_REQUIRE(config_.n_clients > 0, "need at least one client");
  FC_REQUIRE(config_.n_attackers >= 0 && config_.n_attackers <= config_.n_clients,
             "attacker count out of range");
  FC_REQUIRE(!config_.attack.pattern.empty() || config_.n_attackers == 0,
             "attackers configured without a trigger pattern");
  config_.fault.validate(config_.n_clients);
  config_.protocol.transport.validate();
  FC_REQUIRE(config_.protocol.max_backoff_shift >= 0,
             "max_backoff_shift must be non-negative");
  if (remote_net_ != nullptr) {
    // Real processes supply the faults; the injection layer would desync the
    // fate streams between the server's and clients' Simulation replicas.
    FC_REQUIRE(!config_.fault.any_faults() && !config_.fault.force_faulty_network,
               "remote transport excludes the fault-injection layer");
    FC_REQUIRE(remote_net_->n_clients() == config_.n_clients,
               "remote transport sized for a different population");
  }
  // The server's recv deadline is a fault-protocol knob; keep them in sync.
  config_.server.recv_timeout_ms = config_.fault.recv_timeout_ms;

  const bool sampled_rounds = config_.clients_per_round > 0 &&
                              config_.clients_per_round < config_.n_clients;
  switch (config_.residency) {
    case ClientResidency::kMaterialized:
      virtual_mode_ = false;
      break;
    case ClientResidency::kVirtual:
      virtual_mode_ = true;
      break;
    case ClientResidency::kAuto:
      virtual_mode_ = config_.n_clients >= kVirtualAutoThreshold && sampled_rounds;
      break;
  }
  FC_REQUIRE(remote_net_ == nullptr || !virtual_mode_,
             "remote transport requires the materialized client engine");
  if (virtual_mode_) {
    FC_REQUIRE(sampled_rounds,
               "virtual clients need 0 < clients_per_round < n_clients");
    FC_REQUIRE(config_.defense_clients > 0,
               "virtual clients need a positive defense_clients committee");
    FC_REQUIRE(config_.max_resident_clients >= 0,
               "max_resident_clients must be non-negative");
  }

  // --- data ------------------------------------------------------------------
  data::SynthConfig train_cfg{config_.samples_per_class_train, rng_.next_u64(),
                              config_.data_noise};
  data::SynthConfig test_cfg{config_.samples_per_class_test, rng_.next_u64(),
                             config_.data_noise};
  auto full_train = data::make_synth(config_.dataset, train_cfg);
  test_ = data::make_synth(config_.dataset, test_cfg);
  if (config_.n_attackers > 0) {
    backdoor_test_ =
        data::make_backdoor_testset(test_, config_.attack.pattern,
                                    config_.attack.victim_label, config_.attack.attack_label);
  }

  const std::uint64_t part_seed = rng_.next_u64();
  std::vector<data::Dataset> locals;
  if (!virtual_mode_) {
    data::PartitionConfig part;
    part.n_clients = config_.n_clients;
    part.labels_per_client = config_.labels_per_client;
    part.samples_per_client = config_.samples_per_client;
    part.seed = part_seed;
    // Attackers must hold victim-label data to poison it.
    for (int a = 0; a < config_.n_attackers; ++a) {
      part.forced_labels.emplace_back(a, config_.attack.victim_label);
    }
    locals = data::partition_k_label(full_train, part);
  }

  // --- network, server, clients ----------------------------------------------
  if (remote_net_ != nullptr) {
    // The round protocol runs over the caller's transport; no in-process
    // wire exists (and no fault layer — checked above).
  } else if (config_.fault.any_faults() || config_.fault.force_faulty_network) {
    // The fault seed is derived from the experiment seed but NOT drawn from
    // rng_: enabling faults must not shift the data/init/selection streams,
    // so a zero-rate faulty run stays byte-identical to the plain network.
    std::uint64_t fseed = config_.fault.fault_seed;
    if (fseed == 0) {
      std::uint64_t state = config_.seed ^ 0xFA171FA171FA171FULL;
      fseed = common::splitmix64(state);
    }
    net_ = std::make_unique<comm::FaultyNetwork>(config_.n_clients, config_.fault, fseed);
  } else {
    net_ = std::make_unique<comm::Network>(config_.n_clients);
  }
  auto server_model = nn::make_model(config_.arch, rng_);
  if (config_.last_conv_weight_decay > 0.0) {
    server_model.net.layer(server_model.last_conv_index).weight_decay =
        config_.last_conv_weight_decay;
  }
  // Server validation set: an independent draw (the paper's "small
  // validation set" assumption).
  data::SynthConfig val_cfg{config_.samples_per_class_test, rng_.next_u64(),
                            config_.data_noise};
  auto validation = data::make_synth(config_.dataset, val_cfg);
  server_ = std::make_unique<Server>(std::move(server_model), std::move(validation),
                                     remote_net_ != nullptr ? *remote_net_ : *net_,
                                     config_.server);

  if (virtual_mode_) {
    // One template replica carries the architecture; per-client weights are
    // irrelevant (every protocol step syncs to the global parameters first).
    auto template_model = nn::make_model(config_.arch, rng_);
    if (config_.last_conv_weight_decay > 0.0) {
      template_model.net.layer(template_model.last_conv_index).weight_decay =
          config_.last_conv_weight_decay;
    }
    const std::uint64_t label_root = rng_.next_u64();
    const std::uint64_t data_root = rng_.next_u64();
    const std::uint64_t seed_root = rng_.next_u64();
    factory_ = std::make_unique<ClientFactory>(config_, std::move(full_train),
                                               std::move(template_model), part_seed,
                                               label_root, data_root, seed_root);
    return;
  }

  // DBA: split the global trigger across the attackers.
  std::vector<data::BackdoorPattern> local_patterns;
  if (config_.dba && config_.n_attackers > 1) {
    local_patterns = data::split_dba(config_.attack.pattern, config_.n_attackers);
  }

  clients_.reserve(static_cast<std::size_t>(config_.n_clients));
  for (int c = 0; c < config_.n_clients; ++c) {
    auto spec = nn::make_model(config_.arch, rng_);
    if (config_.last_conv_weight_decay > 0.0) {
      spec.net.layer(spec.last_conv_index).weight_decay = config_.last_conv_weight_decay;
    }
    Client client(c, std::move(spec), std::move(locals[static_cast<std::size_t>(c)]),
                  config_.train, rng_.next_u64());
    if (c < config_.n_attackers) {
      AttackSpec spec_c = config_.attack;
      if (!local_patterns.empty()) {
        spec_c.pattern = local_patterns[static_cast<std::size_t>(c)];
      }
      client.make_malicious(std::move(spec_c));
    }
    clients_.push_back(std::move(client));
  }
}

Simulation::~Simulation() {
  // Only un-install our own pool; a newer Simulation may have replaced it.
  if (common::ambient_pool() == pool_.get()) common::set_ambient_pool(nullptr);
}

comm::FaultyNetwork* Simulation::faulty_network() {
  return dynamic_cast<comm::FaultyNetwork*>(net_.get());
}

std::size_t Simulation::resident_clients() const {
  return virtual_mode_ ? resident_.size() : clients_.size();
}

Client& Simulation::resident_client(int id) {
  if (!virtual_mode_) return clients_[static_cast<std::size_t>(id)];
  auto it = resident_.find(id);
  FC_REQUIRE(it != resident_.end(), "client is not resident");
  return *slab_[it->second];
}

Client& Simulation::client(int id) {
  FC_REQUIRE(id >= 0 && id < config_.n_clients, "client id out of range");
  if (virtual_mode_ && resident_.find(id) == resident_.end()) {
    ensure_resident({id});
  }
  return resident_client(id);
}

std::size_t Simulation::resident_capacity(std::size_t needed) const {
  std::size_t cap = static_cast<std::size_t>(config_.max_resident_clients);
  if (config_.max_resident_clients <= 0) {
    // Room for two cohorts (the protocol may touch last round's stragglers
    // while this round's cohort trains) and the defense committee.
    const std::size_t cohort =
        config_.clients_per_round > 0
            ? 2 * static_cast<std::size_t>(config_.clients_per_round)
            : 0;
    const std::size_t committee =
        static_cast<std::size_t>(std::min(config_.defense_clients, config_.n_clients));
    cap = std::max({std::size_t{2}, cohort, committee});
  }
  return std::max(cap, needed);
}

void Simulation::evict(int id) {
  auto it = resident_.find(id);
  Client& client = *slab_[it->second];
  ClientPersist persist;
  persist.rng = client.rng_state();
  persist.lr = client.lr();
  persist.prune_masks = client.model().net.prune_masks();
  persist.anticipated_masks = client.anticipated_masks();
  ledger_.insert_or_assign(id, std::move(persist));
  slab_[it->second].reset();
  free_slots_.push_back(it->second);
  resident_.erase(it);
}

void Simulation::materialize(int id) {
  Client client = factory_->make_client(id);
  auto it = ledger_.find(id);
  if (it != ledger_.end()) {
    ClientPersist& persist = it->second;
    client.restore_rng(persist.rng);
    client.set_lr(persist.lr);
    if (!persist.prune_masks.empty()) {
      client.model().net.set_prune_masks(persist.prune_masks);
    }
    if (!persist.anticipated_masks.empty()) {
      client.set_anticipated_masks(std::move(persist.anticipated_masks));
    }
    ledger_.erase(it);
  }
  std::size_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slab_[slot].emplace(std::move(client));
  } else {
    slot = slab_.size();
    slab_.emplace_back(std::move(client));
  }
  resident_.insert_or_assign(id, slot);
}

void Simulation::ensure_resident(const std::vector<int>& ids) {
  for (int id : ids) {
    FC_REQUIRE(id >= 0 && id < config_.n_clients, "client id out of range");
  }
  if (!virtual_mode_) return;
  const std::set<int> wanted(ids.begin(), ids.end());
  std::vector<int> missing;
  for (int id : wanted) {
    if (resident_.find(id) == resident_.end()) missing.push_back(id);
  }
  if (missing.empty()) return;
  // Capacity-based eviction only (never evict just because an id is absent
  // from this call): sequential per-client phases like the fine-tune lr scan
  // would otherwise thrash the slab one client at a time.
  const std::size_t capacity = resident_capacity(wanted.size());
  if (resident_.size() + missing.size() > capacity) {
    std::vector<int> evictable;
    for (const auto& [id, slot] : resident_) {
      (void)slot;
      if (wanted.find(id) == wanted.end()) evictable.push_back(id);
    }
    std::size_t excess = resident_.size() + missing.size() - capacity;
    for (std::size_t i = 0; i < evictable.size() && excess > 0; ++i, --excess) {
      evict(evictable[i]);
    }
  }
  for (int id : missing) materialize(id);
}

void Simulation::dispatch_clients(const std::vector<int>& ids) {
  // Remote deployment: the cohort trains in other processes, driven by the
  // frames the request phase already put on the wire. The local replicas are
  // RNG stand-ins and must never consume (or answer) protocol traffic.
  if (remote_net_ != nullptr) return;
  // Open a new delivery phase first: messages delayed during an earlier phase
  // surface now (stale, overtaken by newer traffic), while messages delayed
  // from here on are held until the *next* dispatch — so a delayed reply
  // always misses at least one collect deadline. Called only from the
  // coordinating thread, never inside pool tasks.
  net_->flush_delayed();
  // Materialize the cohort before fanning out: pool tasks read the resident
  // map concurrently but never mutate it.
  ensure_resident(ids);
  pool_->parallel_for(ids.size(), [&](std::size_t i) {
    obs::Span span("client.dispatch", "fl");
    span.set_arg("client", ids[i]);
    resident_client(ids[i]).handle_pending(*net_);
  });
}

std::vector<int> Simulation::all_client_ids() const {
  std::vector<int> ids(static_cast<std::size_t>(config_.n_clients));
  for (int i = 0; i < config_.n_clients; ++i) ids[static_cast<std::size_t>(i)] = i;
  return ids;
}

std::vector<int> Simulation::attacker_ids() const {
  std::vector<int> ids;
  for (int i = 0; i < config_.n_attackers; ++i) ids.push_back(i);
  return ids;
}

std::vector<int> Simulation::protocol_client_ids() const {
  if (!virtual_mode_) return all_client_ids();
  // Deterministic strided committee over the population: id_k = ⌊k·n/m⌋,
  // strictly increasing, covers the id range evenly, consumes no RNG (so
  // defense phases stay resume-neutral).
  const std::int64_t n = config_.n_clients;
  const std::int64_t m = std::min<std::int64_t>(config_.defense_clients, n);
  std::vector<int> ids(static_cast<std::size_t>(m));
  for (std::int64_t k = 0; k < m; ++k) {
    ids[static_cast<std::size_t>(k)] = static_cast<int>((k * n) / m);
  }
  return ids;
}

std::vector<int> Simulation::run_round(std::uint32_t round) {
  std::vector<int> participants;
  if (config_.clients_per_round <= 0 || config_.clients_per_round >= config_.n_clients) {
    participants = all_client_ids();
  } else if (virtual_mode_) {
    // Floyd's algorithm: a uniform k-subset in O(k) draws — never touches a
    // population-sized pool. Sorted ascending so pool sharding works over
    // contiguous client-id blocks and the streaming fold order is the fixed
    // client-id order.
    std::set<int> picked;
    const int n = config_.n_clients;
    const int k = config_.clients_per_round;
    for (int j = n - k; j < n; ++j) {
      const int t = static_cast<int>(rng_.index(static_cast<std::size_t>(j) + 1));
      if (!picked.insert(t).second) picked.insert(j);
    }
    participants.assign(picked.begin(), picked.end());
  } else {
    auto sampled = rng_.sample_without_replacement(
        static_cast<std::size_t>(config_.n_clients),
        static_cast<std::size_t>(config_.clients_per_round));
    participants.assign(sampled.begin(), sampled.end());
  }
  return run_round(round, participants);
}

std::vector<int> Simulation::run_round(std::uint32_t round,
                                       const std::vector<int>& participants) {
  obs::Span span("fl.round", "fl");
  span.set_arg("round", round);

  auto request = [&](const std::vector<int>& ids) {
    server_->broadcast_model(ids, round);
  };
  auto collect = [&](const std::vector<int>& ids, CollectStats* cs) {
    return server_->collect_updates(ids, round, cs);
  };
  if (config_.buffered_aggregation) {
    // Legacy buffer-everything reference path (kept for the streaming
    // equivalence tests): O(cohort · model) memory.
    auto ex = exchange_with_retries<std::vector<float>>(*this, participants, request,
                                                        collect, "training round");
    last_round_stats_ = ex.stats;
    if (ex.stats.quorum_met) {
      server_->apply_aggregate(ex.clients, ex.values);
    } else {
      // Degraded round: too few valid updates to trust an aggregate. Keep the
      // current global model and move on — training rounds are skippable.
      FC_LOG(Warn) << "round " << round << ": aggregation skipped ("
                   << ex.stats.n_valid << "/" << participants.size()
                   << " valid updates)";
    }
    return participants;
  }

  StreamingAggregator agg(
      StreamingAggregator::mode_for(config_.server.aggregator, config_.server.use_reputation),
      participants.size());
  auto ex = exchange_streaming<std::vector<float>>(
      *this, participants, request, collect,
      [&agg](std::size_t position, std::vector<float>&& update) {
        agg.accept(position, std::move(update));
      },
      "training round");
  last_round_stats_ = ex.stats;
  if (ex.stats.quorum_met) {
    if (agg.mode() == StreamingAggregator::Mode::kFold) {
      server_->apply_update(agg.finalize_mean());
    } else {
      server_->apply_aggregate(ex.clients, agg.finalize_retained());
    }
  } else {
    FC_LOG(Warn) << "round " << round << ": aggregation skipped ("
                 << ex.stats.n_valid << "/" << participants.size()
                 << " valid updates)";
  }
  return participants;
}

void Simulation::run(bool record_history) {
  common::Timer timer;
  for (int r = next_round_; r < config_.rounds; ++r) {
    FC_METRIC(current_round().set(static_cast<double>(r)));
    const std::size_t uplink_before = network().uplink_bytes();
    run_round(static_cast<std::uint32_t>(r));
    const std::uint64_t round_wire_bytes =
        static_cast<std::uint64_t>(network().uplink_bytes() - uplink_before);
    next_round_ = r + 1;
    if (record_history) {
      RoundRecord rec;
      rec.round = r;
      rec.test_acc = test_accuracy();
      rec.attack_acc = attack_success();
      rec.n_participants = last_round_stats_.n_participants;
      rec.n_valid = last_round_stats_.n_valid;
      rec.n_dropped = last_round_stats_.n_dropped;
      rec.n_corrupted = last_round_stats_.n_corrupted;
      rec.n_retried = last_round_stats_.n_retried;
      rec.quorum_met = last_round_stats_.quorum_met;
      rec.wire_bytes = round_wire_bytes;
      history_.push_back(rec);
      const std::uint64_t peak_rss = static_cast<std::uint64_t>(common::peak_rss_bytes());
      FC_METRIC(peak_rss_bytes().set(static_cast<double>(peak_rss)));
      if (obs::Journal* journal = obs::ambient_journal()) {
        obs::JsonObject entry;
        entry.add("kind", "train_round")
            .add("round", rec.round)
            .add("ta", rec.test_acc)
            .add("asr", rec.attack_acc)
            .add("n_participants", rec.n_participants)
            .add("n_valid", rec.n_valid)
            .add("n_dropped", rec.n_dropped)
            .add("n_corrupted", rec.n_corrupted)
            .add("n_retried", rec.n_retried)
            .add("quorum_met", rec.quorum_met)
            .add("wire_bytes", rec.wire_bytes)
            .add("update_codec", comm::update_codec_name(config_.train.update_codec))
            .add("peak_rss", peak_rss);
        journal->write(entry);
      }
      FC_LOG(Debug) << "round " << r << " TA=" << rec.test_acc << " AA=" << rec.attack_acc
                    << " valid=" << rec.n_valid << "/" << rec.n_participants;
    }
    // Snapshot after the journal line so a resumed journal never misses a
    // round the snapshot already contains. Remote mode writes server-scope
    // snapshots (the clients persist their own state in their processes);
    // in-process runs keep the full-run format.
    if (checkpoint_ != nullptr && checkpoint_->enabled() &&
        checkpoint_->due(next_round_, config_.rounds)) {
      checkpoint_->save(remote_net_ != nullptr
                            ? make_server_snapshot(*this, next_round_, run_epoch_)
                            : make_run_snapshot(*this, run_stage::kTrain, next_round_));
    }
  }
  training_seconds_ += timer.elapsed_seconds();
}

void write_round_record(common::ByteWriter& w, const RoundRecord& rec) {
  w.write_i32(rec.round);
  w.write_f64(rec.test_acc);
  w.write_f64(rec.attack_acc);
  w.write_i32(rec.n_participants);
  w.write_i32(rec.n_valid);
  w.write_i32(rec.n_dropped);
  w.write_i32(rec.n_corrupted);
  w.write_i32(rec.n_retried);
  w.write_bool(rec.quorum_met);
  w.write_u64(rec.wire_bytes);
}

RoundRecord read_round_record(common::ByteReader& r) {
  RoundRecord rec;
  rec.round = r.read_i32();
  rec.test_acc = r.read_f64();
  rec.attack_acc = r.read_f64();
  rec.n_participants = r.read_i32();
  rec.n_valid = r.read_i32();
  rec.n_dropped = r.read_i32();
  rec.n_corrupted = r.read_i32();
  rec.n_retried = r.read_i32();
  rec.quorum_met = r.read_bool();
  rec.wire_bytes = r.read_u64();
  return rec;
}

void write_exchange_stats(common::ByteWriter& w, const ExchangeStats& stats) {
  w.write_i32(stats.n_participants);
  w.write_i32(stats.n_valid);
  w.write_i32(stats.n_dropped);
  w.write_i32(stats.n_corrupted);
  w.write_i32(stats.n_retried);
  w.write_bool(stats.quorum_met);
}

ExchangeStats read_exchange_stats(common::ByteReader& r) {
  ExchangeStats stats;
  stats.n_participants = r.read_i32();
  stats.n_valid = r.read_i32();
  stats.n_dropped = r.read_i32();
  stats.n_corrupted = r.read_i32();
  stats.n_retried = r.read_i32();
  stats.quorum_met = r.read_bool();
  return stats;
}

void Simulation::save_server_state(common::ByteWriter& w) const {
  w.write_i32(next_round_);
  w.write_f64(training_seconds_);
  common::write_rng_state(w, rng_.state());
  write_exchange_stats(w, last_round_stats_);
  w.write_u32(static_cast<std::uint32_t>(history_.size()));
  for (const auto& rec : history_) write_round_record(w, rec);
  server_->save_state(w);
}

void Simulation::restore_server_state(common::ByteReader& r) {
  next_round_ = r.read_i32();
  training_seconds_ = r.read_f64();
  rng_.restore(common::read_rng_state(r));
  last_round_stats_ = read_exchange_stats(r);
  const std::uint32_t n_history = r.read_u32();
  history_.clear();
  history_.reserve(n_history);
  for (std::uint32_t i = 0; i < n_history; ++i) history_.push_back(read_round_record(r));
  server_->restore_state(r);
}

void Simulation::save_state(common::ByteWriter& w) const {
  FC_REQUIRE(remote_net_ == nullptr,
             "run snapshots cover the in-process wire only, not a live transport");
  w.write_i32(next_round_);
  w.write_f64(training_seconds_);
  common::write_rng_state(w, rng_.state());
  write_exchange_stats(w, last_round_stats_);
  w.write_u32(static_cast<std::uint32_t>(history_.size()));
  for (const auto& rec : history_) write_round_record(w, rec);
  server_->save_state(w);
  w.write_u8(virtual_mode_ ? 1 : 0);
  if (!virtual_mode_) {
    w.write_u32(static_cast<std::uint32_t>(clients_.size()));
    for (const auto& client : clients_) client.save_state(w);
  } else {
    // Resident cohort in full; everyone else is a pure function of the
    // factory roots plus (at most) a small ledger record.
    w.write_u32(static_cast<std::uint32_t>(resident_.size()));
    for (const auto& [id, slot] : resident_) {
      w.write_i32(id);
      slab_[slot]->save_state(w);
    }
    w.write_u32(static_cast<std::uint32_t>(ledger_.size()));
    for (const auto& [id, persist] : ledger_) {
      w.write_i32(id);
      common::write_rng_state(w, persist.rng);
      w.write_f64(persist.lr);
      w.write_u32(static_cast<std::uint32_t>(persist.prune_masks.size()));
      for (const auto& mask : persist.prune_masks) w.write_u8_vector(mask);
      w.write_u32(static_cast<std::uint32_t>(persist.anticipated_masks.size()));
      for (const auto& mask : persist.anticipated_masks) w.write_u8_vector(mask);
    }
  }
  const bool faulty = dynamic_cast<const comm::FaultyNetwork*>(net_.get()) != nullptr;
  w.write_bool(faulty);
  net_->save_state(w);
}

void Simulation::restore_state(common::ByteReader& r) {
  FC_REQUIRE(remote_net_ == nullptr,
             "run snapshots cover the in-process wire only, not a live transport");
  next_round_ = r.read_i32();
  training_seconds_ = r.read_f64();
  rng_.restore(common::read_rng_state(r));
  last_round_stats_ = read_exchange_stats(r);
  const std::uint32_t n_history = r.read_u32();
  history_.clear();
  history_.reserve(n_history);
  for (std::uint32_t i = 0; i < n_history; ++i) history_.push_back(read_round_record(r));
  server_->restore_state(r);
  const bool snapshot_virtual = r.read_u8() != 0;
  if (snapshot_virtual != virtual_mode_) {
    throw CheckpointError("snapshot and configuration disagree on client residency");
  }
  if (!virtual_mode_) {
    const std::uint32_t n_clients = r.read_u32();
    if (n_clients != clients_.size()) {
      throw CheckpointError("run snapshot has " + std::to_string(n_clients) +
                            " clients, expected " + std::to_string(clients_.size()));
    }
    for (auto& client : clients_) client.restore_state(r);
  } else {
    slab_.clear();
    free_slots_.clear();
    resident_.clear();
    ledger_.clear();
    const std::uint32_t n_resident = r.read_u32();
    for (std::uint32_t i = 0; i < n_resident; ++i) {
      const int id = r.read_i32();
      if (id < 0 || id >= config_.n_clients) {
        throw CheckpointError("run snapshot names client " + std::to_string(id) +
                              " outside the population");
      }
      materialize(id);
      resident_client(id).restore_state(r);
    }
    const std::uint32_t n_ledger = r.read_u32();
    for (std::uint32_t i = 0; i < n_ledger; ++i) {
      const int id = r.read_i32();
      if (id < 0 || id >= config_.n_clients) {
        throw CheckpointError("run snapshot ledger names client " + std::to_string(id) +
                              " outside the population");
      }
      ClientPersist persist;
      persist.rng = common::read_rng_state(r);
      persist.lr = r.read_f64();
      const std::uint32_t n_prune = r.read_u32();
      persist.prune_masks.reserve(n_prune);
      for (std::uint32_t m = 0; m < n_prune; ++m) {
        persist.prune_masks.push_back(r.read_u8_vector());
      }
      const std::uint32_t n_anticipated = r.read_u32();
      persist.anticipated_masks.reserve(n_anticipated);
      for (std::uint32_t m = 0; m < n_anticipated; ++m) {
        persist.anticipated_masks.push_back(r.read_u8_vector());
      }
      ledger_.insert_or_assign(id, std::move(persist));
    }
  }
  const bool faulty = r.read_bool();
  if (faulty != (dynamic_cast<comm::FaultyNetwork*>(net_.get()) != nullptr)) {
    throw CheckpointError("snapshot and configuration disagree on fault injection");
  }
  net_->restore_state(r);
}

double Simulation::test_accuracy() {
  return evaluate_accuracy(server_->model().net, test_);
}

double Simulation::attack_success() {
  if (backdoor_test_.empty()) return 0.0;
  return attack_success_rate(server_->model().net, backdoor_test_);
}

}  // namespace fedcleanse::fl
