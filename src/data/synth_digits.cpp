#include <algorithm>
#include <array>
#include <cmath>

#include "data/synth.h"

namespace fedcleanse::data {

namespace {

constexpr int kSide = 20;

// Seven-segment layout on the 20×20 canvas (before jitter):
//
//    A          segments: A top, B top-right, C bottom-right,
//   F B                   D bottom, E bottom-left, F top-left, G middle
//    G
//   E C
//    D
struct Segment {
  int y0, x0, y1, x1;  // inclusive thick-line endpoints
};

constexpr std::array<Segment, 7> kSegments = {{
    {3, 6, 3, 13},    // A
    {3, 13, 9, 13},   // B
    {9, 13, 16, 13},  // C
    {16, 6, 16, 13},  // D
    {9, 6, 16, 6},    // E
    {3, 6, 9, 6},     // F
    {9, 6, 9, 13},    // G
}};

// Which segments are lit for each digit (A..G).
constexpr std::array<std::uint8_t, 10> kDigitSegments = {
    0b1111110,  // 0: A B C D E F
    0b0110000,  // 1: B C
    0b1101101,  // 2: A B D E G
    0b1111001,  // 3: A B C D G
    0b0110011,  // 4: B C F G
    0b1011011,  // 5: A C D F G
    0b1011111,  // 6: A C D E F G
    0b1110000,  // 7: A B C
    0b1111111,  // 8: all
    0b1111011,  // 9: A B C D F G
};

void draw_thick_line(tensor::Tensor& img, const Segment& seg, int dy, int dx,
                     float intensity) {
  // Draw a 2-pixel-thick line between endpoints (axis-aligned segments only).
  const int y0 = seg.y0 + dy, y1 = seg.y1 + dy;
  const int x0 = seg.x0 + dx, x1 = seg.x1 + dx;
  auto plot = [&](int y, int x) {
    if (y < 0 || y >= kSide || x < 0 || x >= kSide) return;
    float& px = img.at(0, y, x);
    px = std::max(px, intensity);
  };
  if (y0 == y1) {
    for (int x = std::min(x0, x1); x <= std::max(x0, x1); ++x) {
      plot(y0, x);
      plot(y0 + 1, x);
    }
  } else {
    for (int y = std::min(y0, y1); y <= std::max(y0, y1); ++y) {
      plot(y, x0);
      plot(y, x0 + 1);
    }
  }
}

}  // namespace

Dataset make_synth_digits(const SynthConfig& config) {
  common::Rng rng(config.seed);
  Dataset ds(10);
  for (int digit = 0; digit < 10; ++digit) {
    for (int s = 0; s < config.samples_per_class; ++s) {
      tensor::Tensor img(tensor::Shape{1, kSide, kSide});
      const int dy = rng.int_range(-2, 2);
      const int dx = rng.int_range(-2, 2);
      const float intensity = static_cast<float>(rng.uniform(0.7, 1.0));
      const std::uint8_t mask = kDigitSegments[static_cast<std::size_t>(digit)];
      for (int seg = 0; seg < 7; ++seg) {
        if (mask & (1u << (6 - seg))) {
          draw_thick_line(img, kSegments[static_cast<std::size_t>(seg)], dy, dx, intensity);
        }
      }
      for (auto& px : img.storage()) {
        px += static_cast<float>(rng.normal(0.0, config.noise));
        px = std::clamp(px, 0.0f, 1.0f);
      }
      ds.add(std::move(img), digit);
    }
  }
  return ds;
}

}  // namespace fedcleanse::data
