#include "data/backdoor.h"

#include "common/error.h"

namespace fedcleanse::data {

void BackdoorPattern::apply(tensor::Tensor& image) const {
  FC_REQUIRE(image.shape().rank() == 3, "pattern applies to [C,H,W] images");
  const int c = image.shape()[0], h = image.shape()[1], w = image.shape()[2];
  for (const auto& px : pixels) {
    FC_REQUIRE(px.y >= 0 && px.y < h && px.x >= 0 && px.x < w,
               "trigger pixel outside the canvas");
    if (px.channel < 0) {
      for (int ch = 0; ch < c; ++ch) image.at(ch, px.y, px.x) = px.value;
    } else {
      FC_REQUIRE(px.channel < c, "trigger channel out of range");
      image.at(px.channel, px.y, px.x) = px.value;
    }
  }
}

tensor::Tensor BackdoorPattern::applied(const tensor::Tensor& image) const {
  tensor::Tensor copy = image;
  apply(copy);
  return copy;
}

BackdoorPattern make_pixel_pattern(int n_pixels) {
  FC_REQUIRE(n_pixels >= 1 && n_pixels <= 9, "supported pixel patterns: 1..9 pixels");
  BackdoorPattern p;
  p.name = std::to_string(n_pixels) + "-pixel";
  // Diagonal + anti-diagonal arrangement in the 5×5 top-left corner,
  // mirroring the paper's Fig 1 patterns.
  static const int coords[9][2] = {
      {1, 1}, {2, 2}, {3, 3}, {1, 3}, {3, 1}, {0, 0}, {0, 4}, {4, 0}, {4, 4},
  };
  for (int i = 0; i < n_pixels; ++i) {
    p.pixels.push_back(TriggerPixel{coords[i][0], coords[i][1], 1.0f, -1});
  }
  return p;
}

BackdoorPattern make_dba_global_pattern(int height, int width) {
  FC_REQUIRE(height >= 8 && width >= 8, "DBA pattern needs a canvas of at least 8x8");
  BackdoorPattern p;
  p.name = "dba-global";
  const int cy = height / 2, cx = width / 2;
  // A plus shape spanning all four quadrants: 4 arm pixels per direction.
  for (int d = 1; d <= 3; ++d) {
    p.pixels.push_back(TriggerPixel{cy - d, cx, 1.0f, -1});  // up    (Q1/Q2)
    p.pixels.push_back(TriggerPixel{cy + d, cx, 1.0f, -1});  // down  (Q3/Q4)
    p.pixels.push_back(TriggerPixel{cy, cx - d, 1.0f, -1});  // left
    p.pixels.push_back(TriggerPixel{cy, cx + d, 1.0f, -1});  // right
  }
  p.pixels.push_back(TriggerPixel{cy, cx, 1.0f, -1});
  return p;
}

std::vector<BackdoorPattern> split_dba(const BackdoorPattern& global, int parts) {
  FC_REQUIRE(parts > 0, "parts must be positive");
  std::vector<BackdoorPattern> locals(static_cast<std::size_t>(parts));
  for (int i = 0; i < parts; ++i) {
    locals[static_cast<std::size_t>(i)].name =
        global.name + "-part" + std::to_string(i) + "/" + std::to_string(parts);
  }
  for (std::size_t i = 0; i < global.pixels.size(); ++i) {
    locals[i % static_cast<std::size_t>(parts)].pixels.push_back(global.pixels[i]);
  }
  return locals;
}

Dataset poison_training_set(const Dataset& local, const BackdoorPattern& pattern,
                            int victim_label, int attack_label, int poison_copies) {
  FC_REQUIRE(poison_copies >= 0, "poison_copies must be non-negative");
  Dataset out(local.num_classes());
  for (std::size_t i = 0; i < local.size(); ++i) {
    out.add(local.image(i), local.label(i));
    if (local.label(i) == victim_label) {
      for (int c = 0; c < poison_copies; ++c) {
        out.add(pattern.applied(local.image(i)), attack_label);
      }
    }
  }
  return out;
}

Dataset make_backdoor_testset(const Dataset& test, const BackdoorPattern& pattern,
                              int victim_label, int attack_label) {
  Dataset out(test.num_classes());
  for (std::size_t i = 0; i < test.size(); ++i) {
    if (test.label(i) != victim_label) continue;
    out.add(pattern.applied(test.image(i)), attack_label);
  }
  FC_REQUIRE(!out.empty(), "test set has no victim-label examples");
  return out;
}

}  // namespace fedcleanse::data
