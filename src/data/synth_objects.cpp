#include <algorithm>
#include <cmath>

#include "data/synth.h"

namespace fedcleanse::data {

namespace {

constexpr int kSide = 16;

struct Rgb {
  float r, g, b;
};

// Five colors × two shapes = ten classes: class = color_index * 2 + shape.
constexpr Rgb kColors[5] = {
    {0.9f, 0.15f, 0.15f},  // red
    {0.15f, 0.9f, 0.15f},  // green
    {0.2f, 0.25f, 0.9f},   // blue
    {0.9f, 0.85f, 0.1f},   // yellow
    {0.85f, 0.2f, 0.85f},  // magenta
};

bool inside_shape(int shape, float y, float x, float cy, float cx, float radius) {
  if (shape == 0) {  // disk
    const float dy = y - cy, dx = x - cx;
    return dy * dy + dx * dx < radius * radius;
  }
  // plus / cross — chosen over a square so the two shapes stay separable
  // after three rounds of pooling at 16×16 resolution
  return (std::abs(y - cy) < 1.6f && std::abs(x - cx) < radius * 1.3f) ||
         (std::abs(x - cx) < 1.6f && std::abs(y - cy) < radius * 1.3f);
}

}  // namespace

Dataset make_synth_objects(const SynthConfig& config) {
  common::Rng rng(config.seed);
  Dataset ds(10);
  for (int cls = 0; cls < 10; ++cls) {
    const int color = cls / 2;
    const int shape = cls % 2;
    for (int s = 0; s < config.samples_per_class; ++s) {
      tensor::Tensor img(tensor::Shape{3, kSide, kSide});
      // Low-intensity background with a random linear gradient, mimicking
      // natural-image clutter.
      const float gy = static_cast<float>(rng.uniform(-0.15, 0.15));
      const float gx = static_cast<float>(rng.uniform(-0.15, 0.15));
      const float base = static_cast<float>(rng.uniform(0.1, 0.3));
      const float cy = static_cast<float>(rng.uniform(5.0, kSide - 5.0));
      const float cx = static_cast<float>(rng.uniform(5.0, kSide - 5.0));
      const float radius = static_cast<float>(rng.uniform(3.5, 5.0));
      const float gain = static_cast<float>(rng.uniform(0.75, 1.0));
      const Rgb fg = kColors[color];
      for (int y = 0; y < kSide; ++y) {
        for (int x = 0; x < kSide; ++x) {
          float bg = base + gy * y / kSide + gx * x / kSide;
          Rgb px{bg, bg, bg};
          if (inside_shape(shape, static_cast<float>(y), static_cast<float>(x), cy, cx,
                           radius)) {
            px = {gain * fg.r, gain * fg.g, gain * fg.b};
          }
          const float noise_r = static_cast<float>(rng.normal(0.0, config.noise));
          const float noise_g = static_cast<float>(rng.normal(0.0, config.noise));
          const float noise_b = static_cast<float>(rng.normal(0.0, config.noise));
          img.at(0, y, x) = std::clamp(px.r + noise_r, 0.0f, 1.0f);
          img.at(1, y, x) = std::clamp(px.g + noise_g, 0.0f, 1.0f);
          img.at(2, y, x) = std::clamp(px.b + noise_b, 0.0f, 1.0f);
        }
      }
      ds.add(std::move(img), cls);
    }
  }
  return ds;
}

Dataset make_synth(SynthKind kind, const SynthConfig& config) {
  switch (kind) {
    case SynthKind::kDigits: return make_synth_digits(config);
    case SynthKind::kFashion: return make_synth_fashion(config);
    case SynthKind::kObjects: return make_synth_objects(config);
  }
  throw ConfigError("unknown SynthKind");
}

const char* synth_name(SynthKind kind) {
  switch (kind) {
    case SynthKind::kDigits: return "synth-digits (MNIST stand-in)";
    case SynthKind::kFashion: return "synth-fashion (Fashion-MNIST stand-in)";
    case SynthKind::kObjects: return "synth-objects (CIFAR-10 stand-in)";
  }
  return "?";
}

}  // namespace fedcleanse::data
