// Non-IID data partitioning across federated clients.
//
// Implements the paper's K-label distribution: each client is assigned data
// from K randomly chosen labels, and every client receives the same number
// of samples (the paper's simplified-FedAvg assumption).
#pragma once

#include <vector>

#include "common/rng.h"
#include "data/dataset.h"

namespace fedcleanse::data {

struct PartitionConfig {
  int n_clients = 10;
  // K: number of distinct labels per client (3 in most paper experiments).
  int labels_per_client = 3;
  // Samples per client; 0 = divide the dataset evenly.
  int samples_per_client = 0;
  std::uint64_t seed = 7;
  // Force specific (client, label) assignments — used to guarantee the
  // attacker holds victim-label data. Each pair consumes one of that
  // client's K label slots.
  std::vector<std::pair<int, int>> forced_labels;
};

// Returns one local dataset per client. Labels are assigned so that every
// label is held by at least one client (coverage guarantee); samples of a
// label are drawn round-robin from that label's pool, cycling if a label is
// oversubscribed.
std::vector<Dataset> partition_k_label(const Dataset& full, const PartitionConfig& config);

// Dirichlet non-IID partition: for every label, split its examples across
// clients with proportions drawn from Dir(alpha). Small alpha → severe
// label skew; alpha → ∞ approaches IID. A common alternative to the paper's
// K-label scheme, provided for sensitivity studies.
std::vector<Dataset> partition_dirichlet(const Dataset& full, int n_clients, double alpha,
                                         std::uint64_t seed);

// The label sets chosen by partition_k_label for the same config — exposed
// for inspection and tests.
std::vector<std::vector<int>> plan_label_assignment(int n_clients, int labels_per_client,
                                                    int num_classes,
                                                    const std::vector<std::pair<int, int>>& forced,
                                                    common::Rng& rng);

}  // namespace fedcleanse::data
