// BadNets-style pixel-pattern backdoors and the DBA trigger decomposition.
//
// A pattern is a set of trigger pixels stamped onto an image. The attacker
// trains on both clean and backdoored copies of victim-label images (the
// backdoored copies relabeled to the attack label), so the model learns the
// trigger instead of generally misclassifying the victim class.
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"

namespace fedcleanse::data {

struct TriggerPixel {
  int y = 0;
  int x = 0;
  float value = 1.0f;
  // Channel to stamp; -1 stamps every channel.
  int channel = -1;
};

struct BackdoorPattern {
  std::string name;
  std::vector<TriggerPixel> pixels;

  // Stamp the pattern onto a [C,H,W] image in place. Out-of-bounds trigger
  // pixels are an error (patterns are built for a known canvas size).
  void apply(tensor::Tensor& image) const;
  tensor::Tensor applied(const tensor::Tensor& image) const;
  bool empty() const { return pixels.empty(); }
};

// The paper's k-pixel corner patterns (Fig 1), k ∈ {1,3,5,7,9}: a diagonal
// arrangement in the top-left region.
BackdoorPattern make_pixel_pattern(int n_pixels);

// DBA global trigger: a plus-shaped pattern spanning the four quadrants of
// the canvas (Fig 4), sized for height×width images.
BackdoorPattern make_dba_global_pattern(int height, int width);

// Split a global pattern into `parts` local patterns by round-robin over its
// pixels (each DBA attacker embeds only its own slice; evaluation uses the
// full pattern).
std::vector<BackdoorPattern> split_dba(const BackdoorPattern& global, int parts);

// Attacker-side training set: the attacker's clean local data plus, for each
// victim-label image, `poison_copies` backdoored copies relabeled to the
// attack label.
Dataset poison_training_set(const Dataset& local, const BackdoorPattern& pattern,
                            int victim_label, int attack_label, int poison_copies);

// Evaluation set for the attack success rate: every test image of the victim
// label, stamped with the (full) pattern and labeled with the attack label.
// Model accuracy on this set == ASR.
Dataset make_backdoor_testset(const Dataset& test, const BackdoorPattern& pattern,
                              int victim_label, int attack_label);

}  // namespace fedcleanse::data
