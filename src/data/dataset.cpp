#include "data/dataset.h"

#include "common/error.h"

namespace fedcleanse::data {

void Dataset::add(tensor::Tensor image, int label) {
  FC_REQUIRE(label >= 0 && label < num_classes_, "label out of range");
  if (!images_.empty()) {
    FC_REQUIRE(image.shape() == images_.front().shape(),
               "all images in a dataset must share a shape");
  }
  images_.push_back(std::move(image));
  labels_.push_back(label);
}

void Dataset::replace_image(std::size_t i, tensor::Tensor image) {
  FC_REQUIRE(i < size(), "replace_image index out of range");
  FC_REQUIRE(image.shape() == images_[i].shape(), "replacement image shape mismatch");
  images_[i] = std::move(image);
}

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  Dataset out(num_classes_);
  for (std::size_t i : indices) {
    FC_REQUIRE(i < size(), "subset index out of range");
    out.add(images_[i], labels_[i]);
  }
  return out;
}

std::vector<std::size_t> Dataset::indices_of_label(int label) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    if (labels_[i] == label) out.push_back(i);
  }
  return out;
}

std::vector<std::size_t> Dataset::label_histogram() const {
  std::vector<std::size_t> hist(static_cast<std::size_t>(num_classes_), 0);
  for (int l : labels_) ++hist[static_cast<std::size_t>(l)];
  return hist;
}

Batch Dataset::make_batch(std::span<const std::size_t> indices) const {
  FC_REQUIRE(!indices.empty(), "cannot make an empty batch");
  const auto& shape = images_[indices[0]].shape();
  FC_REQUIRE(shape.rank() == 3, "images must be [C,H,W]");
  const int c = shape[0], h = shape[1], w = shape[2];
  tensor::Tensor stacked(tensor::Shape{static_cast<int>(indices.size()), c, h, w});
  auto out = stacked.data();
  const std::size_t per_image = static_cast<std::size_t>(c) * h * w;
  Batch batch{std::move(stacked), {}};
  batch.labels.reserve(indices.size());
  std::size_t row = 0;
  for (std::size_t i : indices) {
    FC_REQUIRE(i < size(), "batch index out of range");
    const auto img = images_[i].data();
    std::copy(img.begin(), img.end(), out.begin() + static_cast<std::ptrdiff_t>(row * per_image));
    batch.labels.push_back(labels_[i]);
    ++row;
  }
  return batch;
}

std::vector<std::vector<std::size_t>> Dataset::shuffled_batches(int batch_size,
                                                                common::Rng& rng) const {
  FC_REQUIRE(batch_size > 0, "batch_size must be positive");
  std::vector<std::size_t> order(size());
  for (std::size_t i = 0; i < size(); ++i) order[i] = i;
  rng.shuffle(order);
  std::vector<std::vector<std::size_t>> batches;
  for (std::size_t start = 0; start < order.size(); start += static_cast<std::size_t>(batch_size)) {
    const std::size_t end = std::min(order.size(), start + static_cast<std::size_t>(batch_size));
    batches.emplace_back(order.begin() + static_cast<std::ptrdiff_t>(start),
                         order.begin() + static_cast<std::ptrdiff_t>(end));
  }
  return batches;
}

void Dataset::append(const Dataset& other) {
  FC_REQUIRE(other.num_classes() == num_classes_, "num_classes mismatch in append");
  for (std::size_t i = 0; i < other.size(); ++i) {
    add(other.image(i), other.label(i));
  }
}

}  // namespace fedcleanse::data
