// Synthetic dataset generators (the offline stand-ins for MNIST,
// Fashion-MNIST and CIFAR-10 — see DESIGN.md §2 for the substitution
// rationale). All three produce 10-class image datasets whose classes are
// learnable by the paper's CNN architectures, with per-sample geometric and
// intensity jitter plus Gaussian pixel noise so the tasks are non-trivial.
#pragma once

#include "common/rng.h"
#include "data/dataset.h"

namespace fedcleanse::data {

struct SynthConfig {
  int samples_per_class = 100;
  std::uint64_t seed = 1;
  // Std-dev of additive Gaussian pixel noise.
  double noise = 0.10;
};

// MNIST stand-in: seven-segment style digit glyphs on a 1×20×20 canvas.
Dataset make_synth_digits(const SynthConfig& config);

// Fashion-MNIST stand-in: texture/shape classes (stripes, checks, blobs,
// rings, gradients) on a 1×20×20 canvas. Harder than SynthDigits.
Dataset make_synth_fashion(const SynthConfig& config);

// CIFAR-10 stand-in: color+shape composite classes on a 3×16×16 canvas.
Dataset make_synth_objects(const SynthConfig& config);

enum class SynthKind { kDigits, kFashion, kObjects };
Dataset make_synth(SynthKind kind, const SynthConfig& config);
const char* synth_name(SynthKind kind);

}  // namespace fedcleanse::data
