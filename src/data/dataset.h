// In-memory labeled image dataset plus batching helpers.
#pragma once

#include <span>
#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace fedcleanse::data {

// A batch ready for the network: images stacked to [N, C, H, W].
struct Batch {
  tensor::Tensor images;
  std::vector<int> labels;
};

class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(int num_classes) : num_classes_(num_classes) {}

  void add(tensor::Tensor image, int label);
  std::size_t size() const { return images_.size(); }
  bool empty() const { return images_.empty(); }
  int num_classes() const { return num_classes_; }
  void set_num_classes(int n) { num_classes_ = n; }

  const tensor::Tensor& image(std::size_t i) const { return images_[i]; }
  // Replace an image in place (shape must match the dataset's image shape).
  void replace_image(std::size_t i, tensor::Tensor image);
  int label(std::size_t i) const { return labels_[i]; }
  const std::vector<int>& labels() const { return labels_; }

  // Subset by index list (copies).
  Dataset subset(std::span<const std::size_t> indices) const;
  // All indices of examples with the given label.
  std::vector<std::size_t> indices_of_label(int label) const;
  // Per-label example counts.
  std::vector<std::size_t> label_histogram() const;

  // Stack the given examples into a batch.
  Batch make_batch(std::span<const std::size_t> indices) const;
  // Split [0, size) into shuffled minibatches of at most batch_size.
  std::vector<std::vector<std::size_t>> shuffled_batches(int batch_size,
                                                         common::Rng& rng) const;

  // Concatenate another dataset into this one.
  void append(const Dataset& other);

 private:
  std::vector<tensor::Tensor> images_;
  std::vector<int> labels_;
  int num_classes_ = 10;
};

}  // namespace fedcleanse::data
