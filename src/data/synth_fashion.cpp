#include <algorithm>
#include <cmath>

#include "data/synth.h"

namespace fedcleanse::data {

namespace {

constexpr int kSide = 20;

// Ten texture/shape classes. Each renderer takes phase/position jitter so
// samples within a class vary, and returns pixel intensity in [0,1].
float texture_value(int cls, int y, int x, int jy, int jx, float freq_jitter) {
  const float fy = static_cast<float>(y + jy);
  const float fx = static_cast<float>(x + jx);
  const float cy = kSide / 2.0f + static_cast<float>(jy);
  const float cx = kSide / 2.0f + static_cast<float>(jx);
  const float r = std::sqrt((fy - cy) * (fy - cy) + (fx - cx) * (fx - cx));
  switch (cls) {
    case 0:  // horizontal stripes
      return (static_cast<int>(fy / (3.0f * freq_jitter)) % 2 == 0) ? 0.9f : 0.1f;
    case 1:  // vertical stripes
      return (static_cast<int>(fx / (3.0f * freq_jitter)) % 2 == 0) ? 0.9f : 0.1f;
    case 2:  // diagonal stripes
      return (static_cast<int>((fx + fy) / (3.0f * freq_jitter)) % 2 == 0) ? 0.9f : 0.1f;
    case 3:  // checkerboard
      return ((static_cast<int>(fy / 4) + static_cast<int>(fx / 4)) % 2 == 0) ? 0.9f : 0.1f;
    case 4:  // centered disk
      return r < 6.0f * freq_jitter ? 0.9f : 0.05f;
    case 5:  // ring
      return (r > 4.0f && r < 7.5f) ? 0.9f : 0.05f;
    case 6:  // bottom triangle
      return (fy > kSide - 2.0f * (kSide - fx) * 0.5f - 4.0f && fy > 10.0f) ? 0.85f : 0.05f;
    case 7:  // horizontal gradient
      return 0.1f + 0.8f * fx / kSide;
    case 8:  // four corner squares
      return ((fy < 6 || fy >= kSide - 6) && (fx < 6 || fx >= kSide - 6)) ? 0.9f : 0.05f;
    case 9:  // central cross
      return (std::abs(fy - cy) < 2.5f || std::abs(fx - cx) < 2.5f) ? 0.9f : 0.05f;
    default: return 0.0f;
  }
}

}  // namespace

Dataset make_synth_fashion(const SynthConfig& config) {
  common::Rng rng(config.seed);
  Dataset ds(10);
  for (int cls = 0; cls < 10; ++cls) {
    for (int s = 0; s < config.samples_per_class; ++s) {
      tensor::Tensor img(tensor::Shape{1, kSide, kSide});
      const int jy = rng.int_range(-2, 2);
      const int jx = rng.int_range(-2, 2);
      const float freq = static_cast<float>(rng.uniform(0.85, 1.15));
      const float gain = static_cast<float>(rng.uniform(0.75, 1.0));
      for (int y = 0; y < kSide; ++y) {
        for (int x = 0; x < kSide; ++x) {
          float v = gain * texture_value(cls, y, x, jy, jx, freq);
          v += static_cast<float>(rng.normal(0.0, config.noise));
          img.at(0, y, x) = std::clamp(v, 0.0f, 1.0f);
        }
      }
      ds.add(std::move(img), cls);
    }
  }
  return ds;
}

}  // namespace fedcleanse::data
