#include "data/partition.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace fedcleanse::data {

std::vector<std::vector<int>> plan_label_assignment(
    int n_clients, int labels_per_client, int num_classes,
    const std::vector<std::pair<int, int>>& forced, common::Rng& rng) {
  FC_REQUIRE(n_clients > 0, "need at least one client");
  FC_REQUIRE(labels_per_client > 0 && labels_per_client <= num_classes,
             "labels_per_client out of range");

  std::vector<std::vector<int>> assignment(static_cast<std::size_t>(n_clients));
  auto has_label = [&](int client, int label) {
    const auto& v = assignment[static_cast<std::size_t>(client)];
    return std::find(v.begin(), v.end(), label) != v.end();
  };

  // Forced assignments first (attacker must hold the victim label).
  for (const auto& [client, label] : forced) {
    FC_REQUIRE(client >= 0 && client < n_clients, "forced client out of range");
    FC_REQUIRE(label >= 0 && label < num_classes, "forced label out of range");
    if (!has_label(client, label)) {
      assignment[static_cast<std::size_t>(client)].push_back(label);
    }
  }

  // Coverage guarantee: assign each label to at least one client, preferring
  // clients with free slots.
  for (int label = 0; label < num_classes; ++label) {
    bool covered = false;
    for (int c = 0; c < n_clients && !covered; ++c) covered = has_label(c, label);
    if (covered) continue;
    // Pick a random client with a free slot; fall back to any client.
    std::vector<int> free_clients;
    for (int c = 0; c < n_clients; ++c) {
      if (static_cast<int>(assignment[static_cast<std::size_t>(c)].size()) <
          labels_per_client) {
        free_clients.push_back(c);
      }
    }
    if (free_clients.empty()) break;  // more labels than total slots; best effort
    const int chosen = free_clients[rng.index(free_clients.size())];
    assignment[static_cast<std::size_t>(chosen)].push_back(label);
  }

  // Fill the remaining slots with random distinct labels.
  for (int c = 0; c < n_clients; ++c) {
    auto& labels = assignment[static_cast<std::size_t>(c)];
    while (static_cast<int>(labels.size()) < labels_per_client) {
      const int label = static_cast<int>(rng.index(static_cast<std::size_t>(num_classes)));
      if (!has_label(c, label)) labels.push_back(label);
    }
    std::sort(labels.begin(), labels.end());
  }
  return assignment;
}

namespace {

// Sample from Gamma(shape, 1) via Marsaglia-Tsang (shape >= some small
// value; boosted for shape < 1).
double sample_gamma(double shape, common::Rng& rng) {
  if (shape < 1.0) {
    const double u = rng.uniform();
    return sample_gamma(shape + 1.0, rng) * std::pow(std::max(u, 1e-12), 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = rng.normal();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    const double u = rng.uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (std::log(std::max(u, 1e-300)) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

}  // namespace

std::vector<Dataset> partition_dirichlet(const Dataset& full, int n_clients, double alpha,
                                         std::uint64_t seed) {
  FC_REQUIRE(!full.empty(), "cannot partition an empty dataset");
  FC_REQUIRE(n_clients > 0 && alpha > 0.0, "bad dirichlet partition config");
  common::Rng rng(seed);
  std::vector<Dataset> clients(static_cast<std::size_t>(n_clients),
                               Dataset(full.num_classes()));
  for (int label = 0; label < full.num_classes(); ++label) {
    auto pool = full.indices_of_label(label);
    if (pool.empty()) continue;
    rng.shuffle(pool);
    // Dirichlet proportions over clients.
    std::vector<double> weights(static_cast<std::size_t>(n_clients));
    double total = 0.0;
    for (auto& w : weights) {
      w = sample_gamma(alpha, rng);
      total += w;
    }
    // Assign contiguous slices of the shuffled pool by cumulative weight.
    std::size_t cursor = 0;
    for (int c = 0; c < n_clients; ++c) {
      const auto share = static_cast<std::size_t>(
          std::round(weights[static_cast<std::size_t>(c)] / total * pool.size()));
      const std::size_t end =
          (c == n_clients - 1) ? pool.size() : std::min(pool.size(), cursor + share);
      for (std::size_t i = cursor; i < end; ++i) {
        clients[static_cast<std::size_t>(c)].add(full.image(pool[i]), label);
      }
      cursor = end;
    }
  }
  // Guarantee no client is empty (tiny datasets + skewed draws): give empty
  // clients one example from the largest client.
  for (auto& client : clients) {
    if (!client.empty()) continue;
    auto largest = std::max_element(
        clients.begin(), clients.end(),
        [](const Dataset& a, const Dataset& b) { return a.size() < b.size(); });
    client.add(largest->image(0), largest->label(0));
  }
  return clients;
}

std::vector<Dataset> partition_k_label(const Dataset& full, const PartitionConfig& config) {
  FC_REQUIRE(!full.empty(), "cannot partition an empty dataset");
  common::Rng rng(config.seed);
  const int num_classes = full.num_classes();
  auto assignment = plan_label_assignment(config.n_clients, config.labels_per_client,
                                          num_classes, config.forced_labels, rng);

  // Pools of shuffled example indices per label, consumed cyclically.
  std::vector<std::vector<std::size_t>> pools(static_cast<std::size_t>(num_classes));
  std::vector<std::size_t> cursors(static_cast<std::size_t>(num_classes), 0);
  for (int label = 0; label < num_classes; ++label) {
    pools[static_cast<std::size_t>(label)] = full.indices_of_label(label);
    rng.shuffle(pools[static_cast<std::size_t>(label)]);
  }

  int samples_per_client = config.samples_per_client;
  if (samples_per_client == 0) {
    samples_per_client = static_cast<int>(full.size()) / config.n_clients;
  }
  FC_REQUIRE(samples_per_client > 0, "samples_per_client resolved to zero");

  std::vector<Dataset> clients;
  clients.reserve(static_cast<std::size_t>(config.n_clients));
  for (int c = 0; c < config.n_clients; ++c) {
    const auto& labels = assignment[static_cast<std::size_t>(c)];
    Dataset local(num_classes);
    for (int s = 0; s < samples_per_client; ++s) {
      const int label = labels[static_cast<std::size_t>(s) % labels.size()];
      auto& pool = pools[static_cast<std::size_t>(label)];
      if (pool.empty()) continue;  // label absent from the source dataset
      auto& cursor = cursors[static_cast<std::size_t>(label)];
      const std::size_t idx = pool[cursor % pool.size()];
      ++cursor;
      local.add(full.image(idx), full.label(idx));
    }
    FC_REQUIRE(!local.empty(), "client received no data — check label pools");
    clients.push_back(std::move(local));
  }
  return clients;
}

}  // namespace fedcleanse::data
