// Input-range limiting (§IV-C: "To limit the input ranges, we normalize all
// the inputs to the model").
//
// A backdoor that relies on extreme input values is starved when every
// image is forced into a bounded range before inference. The synthetic
// generators already emit values in [0,1]; these utilities make the
// guarantee explicit at the model boundary and handle foreign data.
#pragma once

#include "data/dataset.h"

namespace fedcleanse::data {

// Clamp every pixel into [lo, hi] in place.
void clamp_image(tensor::Tensor& image, float lo = 0.0f, float hi = 1.0f);

// Affinely rescale the image so min→0 and max→1 (no-op for constant images).
void rescale_image(tensor::Tensor& image);

enum class NormalizeMode { kClamp, kRescale };

// Apply the chosen normalization to every image of the dataset.
void normalize_dataset(Dataset& dataset, NormalizeMode mode, float lo = 0.0f,
                       float hi = 1.0f);

// True if every pixel of every image lies in [lo, hi].
bool is_normalized(const Dataset& dataset, float lo = 0.0f, float hi = 1.0f);

}  // namespace fedcleanse::data
