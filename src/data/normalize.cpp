#include "data/normalize.h"

#include <algorithm>

#include "common/error.h"

namespace fedcleanse::data {

void clamp_image(tensor::Tensor& image, float lo, float hi) {
  FC_REQUIRE(lo <= hi, "clamp bounds inverted");
  for (auto& px : image.storage()) px = std::clamp(px, lo, hi);
}

void rescale_image(tensor::Tensor& image) {
  FC_REQUIRE(!image.empty(), "cannot rescale an empty image");
  const float mn = image.min();
  const float mx = image.max();
  if (mx - mn < 1e-12f) return;  // constant image: leave as-is
  const float inv = 1.0f / (mx - mn);
  for (auto& px : image.storage()) px = (px - mn) * inv;
}

void normalize_dataset(Dataset& dataset, NormalizeMode mode, float lo, float hi) {
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    // Dataset intentionally exposes images immutably; rebuild through a
    // mutation-by-copy to keep its invariants local.
    tensor::Tensor img = dataset.image(i);
    switch (mode) {
      case NormalizeMode::kClamp: clamp_image(img, lo, hi); break;
      case NormalizeMode::kRescale: rescale_image(img); break;
    }
    dataset.replace_image(i, std::move(img));
  }
}

bool is_normalized(const Dataset& dataset, float lo, float hi) {
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    if (dataset.image(i).min() < lo || dataset.image(i).max() > hi) return false;
  }
  return true;
}

}  // namespace fedcleanse::data
