// Million-client scale bench: rounds/sec and peak RSS versus population size.
//
// One process walks an ascending ladder of client counts (default 1k → 1M,
// trimmable via FEDCLEANSE_SCALE_MAX_CLIENTS), running a few rounds at each
// rung with the virtual-client engine and a fixed small cohort. Because
// VmHWM is a process-lifetime high-water mark, a flat peak_rss_bytes column
// across the *ascending* ladder is direct evidence that memory is
// O(model + cohort), not O(population): if residency leaked with n_clients,
// the later (larger) rungs would push the high-water mark up.
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/sysinfo.h"
#include "common/timer.h"
#include "fl/simulation.h"

namespace {

struct ScaleRecord {
  int n_clients = 0;
  int clients_per_round = 0;
  int rounds = 0;
  double seconds = 0.0;
  std::uint64_t peak_rss_bytes = 0;
  std::uint64_t wire_bytes = 0;  // client→server uplink over the whole run
  std::string update_codec;
  std::size_t resident_clients = 0;
  double rounds_per_sec() const { return seconds > 0.0 ? rounds / seconds : 0.0; }
};

fedcleanse::fl::SimulationConfig scale_config(int n_clients, std::uint64_t seed) {
  fedcleanse::fl::SimulationConfig cfg;
  cfg.arch = fedcleanse::nn::Architecture::kSmallNn;
  cfg.dataset = fedcleanse::data::SynthKind::kDigits;
  cfg.n_clients = n_clients;
  cfg.n_attackers = n_clients / 100;  // 1% malicious population
  cfg.clients_per_round = 10;
  cfg.rounds = 3;
  cfg.labels_per_client = 3;
  cfg.samples_per_class_train = 8;
  cfg.samples_per_class_test = 4;
  cfg.samples_per_client = 4;
  cfg.train.local_epochs = 1;
  cfg.train.batch_size = 16;
  cfg.attack.pattern = fedcleanse::data::make_pixel_pattern(3);
  cfg.attack.victim_label = 9;
  cfg.attack.attack_label = 1;
  cfg.residency = fedcleanse::fl::ClientResidency::kVirtual;
  cfg.defense_clients = 16;
  cfg.seed = seed;
  // FEDCLEANSE_UPDATE_CODEC=int8 reruns the ladder with quantized uplink
  // payloads so the wire_bytes column shows the codec's ~4x shrink at scale.
  if (const char* env = std::getenv("FEDCLEANSE_UPDATE_CODEC")) {
    if (const auto codec = fedcleanse::comm::parse_update_codec(env)) {
      cfg.train.update_codec = *codec;
    }
  }
  return cfg;
}

long long env_ll(const char* name, long long fallback) {
  if (const char* env = std::getenv(name)) {
    const long long v = std::strtoll(env, nullptr, 10);
    if (v > 0) return v;
  }
  return fallback;
}

void write_json(const std::string& path, const std::vector<ScaleRecord>& records) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"fl_scale\",\n  \"results\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& r = records[i];
    out << "    {\"op\": \"fl_round\", \"n_clients\": " << r.n_clients
        << ", \"clients_per_round\": " << r.clients_per_round << ", \"rounds\": " << r.rounds
        << ", \"seconds\": " << r.seconds << ", \"rounds_per_sec\": " << r.rounds_per_sec()
        << ", \"peak_rss_bytes\": " << r.peak_rss_bytes
        << ", \"wire_bytes\": " << r.wire_bytes << ", \"update_codec\": \""
        << r.update_codec << "\", \"resident_clients\": " << r.resident_clients << "}"
        << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main() {
  using namespace fedcleanse;
  bench::init_env();

  const long long max_clients = env_ll("FEDCLEANSE_SCALE_MAX_CLIENTS", 1000000);
  std::vector<int> ladder;
  for (int n : {1000, 10000, 100000, 1000000})
    if (n <= max_clients) ladder.push_back(n);
  if (ladder.empty()) ladder.push_back(static_cast<int>(max_clients));

  std::printf("fl_scale: virtual-client rounds/sec and peak RSS vs population\n");
  bench::print_rule();
  std::printf("%10s %8s %7s %12s %14s %12s %9s\n", "clients", "cohort", "rounds",
              "rounds/sec", "peak RSS (MB)", "wire (KB)", "resident");
  std::vector<ScaleRecord> records;
  for (int n : ladder) {
    fl::Simulation sim(scale_config(n, 42));
    common::Timer timer;
    sim.run(false);
    ScaleRecord rec;
    rec.n_clients = n;
    rec.clients_per_round = sim.config().clients_per_round;
    rec.rounds = sim.config().rounds;
    rec.seconds = timer.elapsed_seconds();
    rec.peak_rss_bytes = static_cast<std::uint64_t>(common::peak_rss_bytes());
    rec.wire_bytes = static_cast<std::uint64_t>(sim.network().uplink_bytes());
    rec.update_codec = comm::update_codec_name(sim.config().train.update_codec);
    rec.resident_clients = sim.resident_clients();
    records.push_back(rec);
    std::printf("%10d %8d %7d %12.2f %14.1f %12.1f %9zu\n", rec.n_clients,
                rec.clients_per_round, rec.rounds, rec.rounds_per_sec(),
                rec.peak_rss_bytes / (1024.0 * 1024.0), rec.wire_bytes / 1024.0,
                rec.resident_clients);
  }
  bench::print_rule();

  const std::string path = "BENCH_fl_scale.json";
  write_json(path, records);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
