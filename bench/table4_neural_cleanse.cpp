// Table IV: comparison with Neural Cleanse on all three datasets.
//
// NC reverse-engineers a trigger per label from the test set, flags MAD
// outliers, and mitigates by pruning trigger-activated neurons. Our method
// is the full FP+FT+AW pipeline.
//
// Paper shape: NC is competitive on MNIST but sacrifices TA; on the harder
// datasets it fails to cut ASR (94.7 on Fashion) while our method does.
#include "baselines/neural_cleanse.h"
#include "bench_common.h"

using namespace fedcleanse;

namespace {

void run_dataset(const char* name, fl::SimulationConfig cfg) {
  fl::Simulation sim(cfg);
  sim.run(false);
  const double ta0 = sim.test_accuracy();
  const double aa0 = sim.attack_success();

  // Neural Cleanse on a clone of the trained model (test set as input).
  auto nc_model = sim.server().model().clone();
  baselines::NeuralCleanseConfig ncfg;
  ncfg.optimization_steps = bench::scaled(120);
  auto nc = baselines::run_neural_cleanse(nc_model, sim.test_set(), ncfg);
  const double nc_ta = fl::evaluate_accuracy(nc_model.net, sim.test_set());
  const double nc_aa = fl::attack_success_rate(nc_model.net, sim.backdoor_testset());

  // Our full pipeline on the live federation.
  auto report = defense::run_defense(sim, bench::default_defense());

  std::printf("%-14s | %5.1f %5.1f | %5.1f %5.1f (flagged:", name, 100 * ta0, 100 * aa0,
              100 * nc_ta, 100 * nc_aa);
  for (int l : nc.flagged_labels) std::printf(" %d", l);
  std::printf(") | %5.1f %5.1f\n", 100 * report.after_aw.test_acc,
              100 * report.after_aw.attack_acc);
}

}  // namespace

int main() {
  bench::init_env();
  std::printf("Table IV — defense comparison with Neural Cleanse (scale=%.2f)\n\n",
              bench::scale());
  std::printf("dataset        | train TA  AA | Neural Cleanse TA AA | ours TA  AA\n");
  bench::print_rule(70);
  run_dataset("mnist", bench::mnist_config(500));
  run_dataset("fashion-mnist", bench::fashion_config(501));
  run_dataset("cifar-10(dba)", bench::cifar_dba_config(502));
  std::printf("\npaper: MNIST 93/3.8 vs 96.9/4.7; Fashion 86.8/94.7 vs 86.4/6.4; CIFAR 67.7/47.9 vs 71.5/32.7\n");
  return 0;
}
