// Table II: Fashion-MNIST stand-in with the single-pixel trigger; modes
// Training / FP / FP+AW / All for victim label 9, attack labels 0..8.
//
// Paper shape: FP alone already removes most of the backdoor on average
// (99.7 → 23.6) but with high variance across targets; FP+AW flattens it
// (1.9); All recovers test accuracy at some ASR cost (86.4 / 6.4).
#include "bench_common.h"

using namespace fedcleanse;

int main() {
  bench::init_env();
  std::printf(
      "Table II — Fashion-MNIST stand-in, single-pixel trigger (scale=%.2f)\n\n",
      bench::scale());
  std::printf("vic atk | test  atk  |  FP: test  atk | FP+AW: test  atk |  All: test  atk\n");
  bench::print_rule(78);

  bench::ModeResults avg;
  for (int atk = 0; atk <= 8; ++atk) {
    auto cfg = bench::fashion_config(300 + static_cast<std::uint64_t>(atk));
    cfg.attack.victim_label = 9;
    cfg.attack.attack_label = atk;
    fl::Simulation sim(cfg);
    sim.run(false);
    auto r = bench::run_all_modes(sim, bench::default_defense());
    std::printf(" 9   %d  | %5.1f %5.1f |     %5.1f %5.1f |       %5.1f %5.1f |      %5.1f %5.1f\n",
                atk, 100 * r.train.test_acc, 100 * r.train.attack_acc, 100 * r.fp.test_acc,
                100 * r.fp.attack_acc, 100 * r.fpaw.test_acc, 100 * r.fpaw.attack_acc,
                100 * r.all.test_acc, 100 * r.all.attack_acc);
    avg.train.test_acc += r.train.test_acc;
    avg.train.attack_acc += r.train.attack_acc;
    avg.fp.test_acc += r.fp.test_acc;
    avg.fp.attack_acc += r.fp.attack_acc;
    avg.fpaw.test_acc += r.fpaw.test_acc;
    avg.fpaw.attack_acc += r.fpaw.attack_acc;
    avg.all.test_acc += r.all.test_acc;
    avg.all.attack_acc += r.all.attack_acc;
  }
  bench::print_rule(78);
  const double n = 9.0;
  std::printf("Avg     | %5.1f %5.1f |     %5.1f %5.1f |       %5.1f %5.1f |      %5.1f %5.1f\n",
              100 * avg.train.test_acc / n, 100 * avg.train.attack_acc / n,
              100 * avg.fp.test_acc / n, 100 * avg.fp.attack_acc / n,
              100 * avg.fpaw.test_acc / n, 100 * avg.fpaw.attack_acc / n,
              100 * avg.all.test_acc / n, 100 * avg.all.attack_acc / n);
  std::printf("\npaper avg: 88.1/99.7 | FP 82.8/23.6 | FP+AW 82.5/1.9 | All 86.4/6.4\n");
  return 0;
}
