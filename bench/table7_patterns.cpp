// Table VII: federated pruning and FP+AW (fixed Δ = 3) under the five
// backdoor pixel patterns (1/3/5/7/9 pixels), task 9→1.
//
// Paper shape: FP's neuron count is stable across patterns; a FIXED Δ=3
// leaves some patterns (3- and 7-pixel in the paper) partially alive,
// motivating the adaptive Δ sweep.
#include "bench_common.h"

using namespace fedcleanse;

int main() {
  bench::init_env();
  std::printf("Table VII — defense under different pixel patterns, fixed delta=3 (scale=%.2f)\n\n",
              bench::scale());
  std::printf("pixels | train TA  AA | FP:  num   TA    AA | FP+AW: num   TA    AA\n");
  bench::print_rule(70);

  for (int pixels : {1, 3, 5, 7, 9}) {
    auto cfg = bench::mnist_config(1000 + static_cast<std::uint64_t>(pixels));
    cfg.attack.pattern = data::make_pixel_pattern(pixels);
    cfg.attack.victim_label = 9;
    cfg.attack.attack_label = 1;
    fl::Simulation sim(cfg);
    sim.run(false);
    const double ta0 = sim.test_accuracy(), aa0 = sim.attack_success();

    auto dcfg = bench::default_defense();
    auto& server = sim.server();
    auto& model = server.model();
    const double baseline = server.validation_accuracy();
    auto order = defense::federated_pruning_order(sim, dcfg);
    auto prune = defense::prune_until(
        model.net, model.last_conv_index, order,
        [&] { return server.validation_accuracy(); }, baseline - dcfg.prune_acc_drop);
    const double ta_fp = sim.test_accuracy(), aa_fp = sim.attack_success();

    // Fixed Δ = 3 one-shot adjustment (the paper's Table VII setting).
    const auto layers = defense::default_adjust_layers(model.net, model.last_conv_index);
    const int zeroed = defense::zero_extreme_weights_once(model.net, layers, 3.0);

    std::printf("  %d    | %5.1f %5.1f |      %3d  %5.1f %5.1f |        %3d  %5.1f %5.1f\n",
                pixels, 100 * ta0, 100 * aa0, prune.n_pruned, 100 * ta_fp, 100 * aa_fp,
                zeroed, 100 * sim.test_accuracy(), 100 * sim.attack_success());
  }
  std::printf("\npaper: FP prunes 22-34 neurons; fixed delta leaves 3- and 7-pixel patterns at ~33-35%% ASR\n");
  return 0;
}
