// Figure 5: the federated pruning process, neuron by neuron — test accuracy
// and attack success rate as successive neurons are pruned, for RAP ("rank")
// vs MVP ("vote") and two attack targets (9→0, 9→2).
//
// Paper shape: ~30 redundant neurons prune with no accuracy loss; for some
// targets ASR collapses before TA does, for others the backdoor survives
// until TA is unacceptable.
#include "bench_common.h"

using namespace fedcleanse;

int main() {
  bench::init_env();
  std::printf("Figure 5 — pruning curves: TA/AA vs #neurons pruned (scale=%.2f)\n\n",
              bench::scale());
  for (int target : {0, 2}) {
    auto cfg = bench::mnist_config(1200 + static_cast<std::uint64_t>(target));
    cfg.attack.attack_label = target;
    fl::Simulation sim(cfg);
    sim.run(false);
    std::printf("backdoor 9 -> %d (trained TA=%.3f AA=%.3f)\n", target, sim.test_accuracy(),
                sim.attack_success());

    for (auto method : {defense::PruneMethod::kRAP, defense::PruneMethod::kMVP}) {
      auto dcfg = bench::default_defense();
      dcfg.method = method;
      auto order = defense::federated_pruning_order(sim, dcfg);
      // Prune a clone all the way down (no threshold) to expose the full curve.
      auto branch = sim.server().model().clone();
      auto outcome = defense::prune_until(
          branch.net, branch.last_conv_index, order,
          [&] { return fl::evaluate_accuracy(branch.net, sim.test_set()); },
          /*min_accuracy=*/0.0,
          [&] { return fl::attack_success_rate(branch.net, sim.backdoor_testset()); },
          /*max_prunes=*/static_cast<int>(order.size()));
      std::printf("  %s:\n  #pruned   TA      AA\n", prune_method_name(method));
      int k = 1;
      for (const auto& step : outcome.trace) {
        std::printf("  %5d   %.3f   %.3f\n", k++, step.accuracy, step.attack_acc);
      }
    }
    std::printf("\n");
  }
  return 0;
}
