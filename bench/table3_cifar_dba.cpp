// Table III: CIFAR-10 stand-in under the Distributed Backdoor Attack.
//
// Four attackers each embed one slice of the plus-shaped global trigger;
// evaluation uses the full trigger. Victim label is "truck" (class 9 in the
// stand-in), attack label sweeps all other classes.
//
// Paper shape: training TA≈72, AA≈88; FP leaves high variance (46.6 avg);
// FP+AW drops AA to 13; All trades some of that back for TA (71.5 / 32.7).
#include "bench_common.h"

using namespace fedcleanse;

int main() {
  bench::init_env();
  std::printf("Table III — CIFAR-10 stand-in under DBA, 4 attackers (scale=%.2f)\n\n",
              bench::scale());
  std::printf("VL     AL         | test  atk  |  FP: test  atk | FP+AW: test  atk |  All: test  atk\n");
  bench::print_rule(88);

  bench::ModeResults avg;
  int rows = 0;
  for (int al = 0; al <= 8; ++al) {
    auto cfg = bench::cifar_dba_config(400 + static_cast<std::uint64_t>(al));
    cfg.attack.victim_label = 9;
    cfg.attack.attack_label = al;
    fl::Simulation sim(cfg);
    sim.run(false);
    auto r = bench::run_all_modes(sim, bench::default_defense());
    std::printf("truck  %-10s | %5.1f %5.1f |     %5.1f %5.1f |       %5.1f %5.1f |      %5.1f %5.1f\n",
                bench::object_class_name(al), 100 * r.train.test_acc,
                100 * r.train.attack_acc, 100 * r.fp.test_acc, 100 * r.fp.attack_acc,
                100 * r.fpaw.test_acc, 100 * r.fpaw.attack_acc, 100 * r.all.test_acc,
                100 * r.all.attack_acc);
    avg.train.test_acc += r.train.test_acc;
    avg.train.attack_acc += r.train.attack_acc;
    avg.fp.test_acc += r.fp.test_acc;
    avg.fp.attack_acc += r.fp.attack_acc;
    avg.fpaw.test_acc += r.fpaw.test_acc;
    avg.fpaw.attack_acc += r.fpaw.attack_acc;
    avg.all.test_acc += r.all.test_acc;
    avg.all.attack_acc += r.all.attack_acc;
    ++rows;
  }
  bench::print_rule(88);
  const double n = static_cast<double>(rows);
  std::printf("Avg               | %5.1f %5.1f |     %5.1f %5.1f |       %5.1f %5.1f |      %5.1f %5.1f\n",
              100 * avg.train.test_acc / n, 100 * avg.train.attack_acc / n,
              100 * avg.fp.test_acc / n, 100 * avg.fp.attack_acc / n,
              100 * avg.fpaw.test_acc / n, 100 * avg.fpaw.attack_acc / n,
              100 * avg.all.test_acc / n, 100 * avg.all.attack_acc / n);
  std::printf("\npaper avg: 72.4/87.6 | FP 71.9/46.6 | FP+AW 71.1/13.0 | All 71.5/32.7\n");
  return 0;
}
