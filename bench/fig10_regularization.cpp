// Figure 10: L2 regularization on the LAST CONV LAYER only, with different
// coefficients λ, as a training-time hardening alternative (Discussion
// §VI-A).
//
// Paper shape: larger λ makes the backdoor harder to implant but costs test
// accuracy; λ=0 trains fastest and is fully backdoored.
#include "bench_common.h"

using namespace fedcleanse;

int main() {
  bench::init_env();
  std::printf("Figure 10 — last-conv L2 regularization during training (scale=%.2f)\n\n",
              bench::scale());
  for (double lambda : {0.0, 0.01, 0.05, 0.2}) {
    auto cfg = bench::mnist_config(1600);
    cfg.last_conv_weight_decay = lambda;
    fl::Simulation sim(cfg);
    std::printf("lambda = %.2f:\nround   TA      AA\n", lambda);
    for (int r = 0; r < cfg.rounds; ++r) {
      sim.run_round(static_cast<std::uint32_t>(r));
      if (r % 2 == 1 || r == cfg.rounds - 1) {
        std::printf("%4d  %.3f  %.3f\n", r, sim.test_accuracy(), sim.attack_success());
      }
    }
    std::printf("\n");
  }
  return 0;
}
