// Table V: federated pruning alone (no FT, no AW) under RAP vs MVP, across
// 18 attack targets.
//
// Paper shape: pruning alone succeeds only in a minority of cases (RAP 5/18,
// MVP 7/18 below 10% ASR) — the motivation for the AW stage.
#include "bench_common.h"

using namespace fedcleanse;

namespace {

defense::StageMetrics prune_only(fl::Simulation& sim, defense::PruneMethod method) {
  auto dcfg = bench::default_defense();
  dcfg.method = method;
  auto& server = sim.server();
  auto& model = server.model();
  const double baseline = server.validation_accuracy();
  auto order = defense::federated_pruning_order(sim, dcfg);
  // Prune a clone so both methods start from the same trained model.
  auto branch = model.clone();
  defense::prune_until(
      branch.net, branch.last_conv_index, order,
      [&] { return fl::evaluate_accuracy(branch.net, server.validation_set()); },
      baseline - dcfg.prune_acc_drop);
  return {fl::evaluate_accuracy(branch.net, sim.test_set()),
          fl::attack_success_rate(branch.net, sim.backdoor_testset())};
}

}  // namespace

int main() {
  bench::init_env();
  std::printf("Table V — pruning-only defense: RAP vs MVP (scale=%.2f)\n\n", bench::scale());
  std::printf("VL  AL | train TA  AA | RAP TA   AA | MVP TA   AA\n");
  bench::print_rule(56);

  int rap_wins = 0, mvp_wins = 0, rows = 0;
  auto run_row = [&](int vl, int al, std::uint64_t seed) {
    auto cfg = bench::mnist_config(seed);
    cfg.attack.victim_label = vl;
    cfg.attack.attack_label = al;
    fl::Simulation sim(cfg);
    sim.run(false);
    auto rap = prune_only(sim, defense::PruneMethod::kRAP);
    auto mvp = prune_only(sim, defense::PruneMethod::kMVP);
    std::printf("%2d  %2d | %5.1f %5.1f | %5.1f %5.1f | %5.1f %5.1f\n", vl, al,
                100 * sim.test_accuracy(), 100 * sim.attack_success(), 100 * rap.test_acc,
                100 * rap.attack_acc, 100 * mvp.test_acc, 100 * mvp.attack_acc);
    if (rap.attack_acc < 0.10) ++rap_wins;
    if (mvp.attack_acc < 0.10) ++mvp_wins;
    ++rows;
  };
  for (int al = 0; al <= 8; ++al) run_row(9, al, 600 + static_cast<std::uint64_t>(al));
  for (int vl = 0; vl <= 8; ++vl) run_row(vl, 9, 700 + static_cast<std::uint64_t>(vl));

  bench::print_rule(56);
  std::printf("defended (<10%% ASR): RAP %d/%d, MVP %d/%d  (paper: 5/18, 7/18)\n", rap_wins,
              rows, mvp_wins, rows);
  return 0;
}
