// Figure 7: random client selection. 50 clients, 10% attackers; each round
// the server samples 5/10/15/20/25 clients. After training, the AW sweep is
// traced (TA and ASR vs Δ) for every selection size.
//
// Paper shape: curves for the different selection sizes behave very
// similarly — the defense is insensitive to the sampling width.
#include "bench_common.h"

using namespace fedcleanse;

int main() {
  bench::init_env();
  std::printf("Figure 7 — 50 clients, 10%% attackers, random per-round selection (scale=%.2f)\n\n",
              bench::scale());
  for (int select : {5, 10, 15, 20, 25}) {
    auto cfg = bench::mnist_config(1300 + static_cast<std::uint64_t>(select));
    cfg.n_clients = 50;
    cfg.n_attackers = 5;
    cfg.clients_per_round = select;
    cfg.rounds = bench::scaled_rounds(40, 25);  // selection slows convergence
    fl::Simulation sim(cfg);
    sim.run(false);
    std::printf("select %2d/50: trained TA=%.3f AA=%.3f\n", select, sim.test_accuracy(),
                sim.attack_success());

    auto& model = sim.server().model();
    defense::AdjustConfig acfg;
    acfg.delta_start = 6.0;
    acfg.delta_step = 0.5;
    acfg.delta_min = 1.0;
    acfg.min_accuracy = 0.0;  // full sweep for the figure
    auto outcome = defense::adjust_extreme_weights(
        model.net, defense::default_adjust_layers(model.net, model.last_conv_index), acfg,
        [&] { return sim.test_accuracy(); }, [&] { return sim.attack_success(); });
    std::printf("  delta    TA      AA\n");
    for (const auto& step : outcome.trace) {
      std::printf("  %4.1f   %.3f   %.3f\n", step.delta, step.accuracy, step.attack_acc);
    }
    std::printf("\n");
  }
  return 0;
}
