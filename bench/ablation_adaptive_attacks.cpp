// Ablation (Discussion §VI-B): the defense against adaptive attackers.
//
//  - Attack 1 (rank manipulation): attacker reports its backdoor neurons as
//    highly active so aggregated rankings protect them.
//  - Attack 2 (pruning-aware): attacker trains against the anticipated
//    pruning mask so the backdoor lives in essential neurons.
//  - Self-adjust: attacker clips its own extreme weights before submitting
//    so AW has nothing to cull.
//
// Paper claim: with a minority attacker these adaptations "nearly do not
// influence the defense results".
#include "bench_common.h"
#include "fl/adaptive_attack.h"

using namespace fedcleanse;

int main() {
  bench::init_env();
  std::printf("Ablation — adaptive attacks vs the full pipeline (scale=%.2f)\n\n",
              bench::scale());
  std::printf("attacker mode      | train TA  AA | FP TA    AA | full TA  AA\n");
  bench::print_rule(62);

  const fl::AdaptiveMode modes[] = {
      fl::AdaptiveMode::kNone,
      fl::AdaptiveMode::kRankManipulation,
      fl::AdaptiveMode::kPruneAware,
      fl::AdaptiveMode::kSelfAdjust,
  };
  for (auto mode : modes) {
    auto cfg = bench::mnist_config(1700 + static_cast<std::uint64_t>(mode));
    cfg.attack.adaptive = mode;
    fl::Simulation sim(cfg);
    if (mode == fl::AdaptiveMode::kPruneAware) {
      // Attack 2 assumes the attacker somehow obtained the pruning mask.
      fl::arm_prune_aware_attackers(sim, 0.5);
    }
    sim.run(false);
    auto r = bench::run_all_modes(sim, bench::default_defense());
    std::printf("%-18s | %5.1f %5.1f | %5.1f %5.1f | %5.1f %5.1f\n",
                fl::adaptive_mode_name(mode), 100 * r.train.test_acc,
                100 * r.train.attack_acc, 100 * r.fp.test_acc, 100 * r.fp.attack_acc,
                100 * r.all.test_acc, 100 * r.all.attack_acc);
  }
  std::printf("\npaper: minority adaptive attackers barely change the outcome\n");
  return 0;
}
