// Microbenchmarks (google-benchmark): the numeric kernels and aggregation
// rules that dominate simulation time.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "fl/aggregation.h"
#include "tensor/ops.h"

using namespace fedcleanse;

namespace {

void BM_Conv2dForward(benchmark::State& state) {
  common::Rng rng(1);
  const int channels = static_cast<int>(state.range(0));
  auto x = tensor::Tensor::randn({32, 16, 10, 10}, rng);
  auto w = tensor::Tensor::randn({channels, 16, 3, 3}, rng, 0.0f, 0.1f);
  auto b = tensor::Tensor::zeros({channels});
  tensor::Conv2dSpec spec{1, 1};
  std::vector<float> cache;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::conv2d_forward_cached(x, w, b, spec, cache));
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_Conv2dForward)->Arg(16)->Arg(32)->Arg(64);

void BM_Conv2dBackward(benchmark::State& state) {
  common::Rng rng(1);
  const int channels = static_cast<int>(state.range(0));
  auto x = tensor::Tensor::randn({32, 16, 10, 10}, rng);
  auto w = tensor::Tensor::randn({channels, 16, 3, 3}, rng, 0.0f, 0.1f);
  auto b = tensor::Tensor::zeros({channels});
  tensor::Conv2dSpec spec{1, 1};
  std::vector<float> cache;
  auto y = tensor::conv2d_forward_cached(x, w, b, spec, cache);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::conv2d_backward_cached(x, w, y, spec, cache));
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_Conv2dBackward)->Arg(16)->Arg(32);

void BM_Matmul(benchmark::State& state) {
  common::Rng rng(1);
  const int n = static_cast<int>(state.range(0));
  auto a = tensor::Tensor::randn({n, n}, rng);
  auto b = tensor::Tensor::randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::matmul(a, b));
  }
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(256);

std::vector<std::vector<float>> make_updates(int n, int dim) {
  common::Rng rng(7);
  std::vector<std::vector<float>> updates(static_cast<std::size_t>(n));
  for (auto& u : updates) {
    u.resize(static_cast<std::size_t>(dim));
    for (auto& v : u) v = static_cast<float>(rng.normal());
  }
  return updates;
}

void BM_FedAvg(benchmark::State& state) {
  auto updates = make_updates(10, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fl::mean_update(updates));
  }
}
BENCHMARK(BM_FedAvg)->Arg(10000)->Arg(100000);

void BM_Krum(benchmark::State& state) {
  auto updates = make_updates(static_cast<int>(state.range(0)), 10000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fl::krum(updates, 2));
  }
}
BENCHMARK(BM_Krum)->Arg(10)->Arg(30);

void BM_Median(benchmark::State& state) {
  auto updates = make_updates(10, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fl::coordinate_median(updates));
  }
}
BENCHMARK(BM_Median)->Arg(10000)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
