// Microbenchmarks: the numeric kernels and aggregation rules that dominate
// simulation time, each timed serially and on an N-thread pool (N from
// FEDCLEANSE_THREADS, default hardware concurrency). Prints a table and
// writes BENCH_micro_ops.json for machine consumption.
#include <cstdio>
#include <string>
#include <tuple>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "common/threadpool.h"
#include "fl/aggregation.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "tensor/quant.h"

using namespace fedcleanse;

namespace {

std::string qgemm_size(int m, int k, int n) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "m%d_k%d_n%d", m, k, n);
  return buf;
}

std::string matmul_size(int n) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "n%d", n);
  return buf;
}

std::string batch_size(int batch, int channels) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "b%d_c%d", batch, channels);
  return buf;
}

std::vector<std::vector<float>> make_updates(int n, int dim) {
  common::Rng rng(7);
  std::vector<std::vector<float>> updates(static_cast<std::size_t>(n));
  for (auto& u : updates) {
    u.resize(static_cast<std::size_t>(dim));
    for (auto& v : u) v = static_cast<float>(rng.normal());
  }
  return updates;
}

// 10×10 input, 3×3 kernel, stride 1, pad 1 → 10×10 output; im2col GEMM is
// [cout, cin·k·k] × [cin·k·k, ho·wo] per sample.
double conv_gemm_flops(int batch, int channels) {
  return 2.0 * batch * channels * (16.0 * 3 * 3) * (10.0 * 10);
}

bench::MicroRecord conv_forward(common::ThreadPool& pool, int batch, int channels) {
  common::Rng rng(1);
  auto x = tensor::Tensor::randn({batch, 16, 10, 10}, rng);
  auto w = tensor::Tensor::randn({channels, 16, 3, 3}, rng, 0.0f, 0.1f);
  auto b = tensor::Tensor::zeros({channels});
  tensor::Conv2dSpec spec{1, 1};
  std::vector<float> cache;
  auto rec = bench::time_serial_vs_threaded(
      "conv2d_forward", batch_size(batch, channels), pool,
      [&] {
        auto y = tensor::conv2d_forward_cached(x, w, b, spec, cache);
        bench::do_not_optimize(y.data().data());
      });
  rec.kernel = "gemm_packed";
  rec.flops_per_iter = conv_gemm_flops(batch, channels);
  return rec;
}

bench::MicroRecord conv_backward(common::ThreadPool& pool, int batch, int channels) {
  common::Rng rng(1);
  auto x = tensor::Tensor::randn({batch, 16, 10, 10}, rng);
  auto w = tensor::Tensor::randn({channels, 16, 3, 3}, rng, 0.0f, 0.1f);
  auto b = tensor::Tensor::zeros({channels});
  tensor::Conv2dSpec spec{1, 1};
  std::vector<float> cache;
  auto y = tensor::conv2d_forward_cached(x, w, b, spec, cache);
  auto rec = bench::time_serial_vs_threaded(
      "conv2d_backward", batch_size(batch, channels), pool,
      [&] {
        auto g = tensor::conv2d_backward_cached(x, w, y, spec, cache);
        bench::do_not_optimize(g.grad_weight.data().data());
      });
  rec.kernel = "gemm_packed";
  rec.flops_per_iter = 2.0 * conv_gemm_flops(batch, channels);  // gw GEMM + gcol GEMM
  return rec;
}

bench::MicroRecord matmul(common::ThreadPool& pool, int n) {
  common::Rng rng(1);
  auto a = tensor::Tensor::randn({n, n}, rng);
  auto b = tensor::Tensor::randn({n, n}, rng);
  auto rec = bench::time_serial_vs_threaded("matmul", matmul_size(n), pool, [&] {
    auto c = tensor::matmul(a, b);
    bench::do_not_optimize(c.data().data());
  });
  rec.kernel = "gemm_packed";
  rec.flops_per_iter = 2.0 * n * n * double(n);
  return rec;
}

// Same product through the legacy scalar i-k-j kernel: the packed-vs-legacy
// pair in the JSON is what scripts/bench_compare.py tracks across commits.
bench::MicroRecord matmul_legacy(common::ThreadPool& pool, int n) {
  common::Rng rng(1);
  auto a = tensor::Tensor::randn({n, n}, rng);
  auto b = tensor::Tensor::randn({n, n}, rng);
  tensor::Tensor c(tensor::Shape{n, n});
  auto rec = bench::time_serial_vs_threaded("matmul", matmul_size(n), pool, [&] {
    tensor::gemm_reference(false, false, n, n, n, a.data().data(), n, b.data().data(), n,
                           c.data().data(), n, /*accumulate=*/false);
    bench::do_not_optimize(c.data().data());
  });
  rec.kernel = "legacy_scalar";
  rec.flops_per_iter = 2.0 * n * n * double(n);
  return rec;
}

// Quantized GEMM rows at convolution-shaped problems (m=cout, k=cin·kh·kw,
// n=ho·wo). The f32/int8/f16 triple shares op+size so bench_compare.py can
// track the quantized speedup row-for-row. The int8 row times the real scan
// path: the weight operand is packed+quantized once (as conv2d_forward_quant
// does per batch), the activation operand quantizes inside the call.
bench::MicroRecord qgemm_f32(common::ThreadPool& pool, int m, int k, int n) {
  common::Rng rng(3);
  auto a = tensor::Tensor::randn({m, k}, rng, 0.0f, 0.5f);
  auto b = tensor::Tensor::randn({k, n}, rng, 0.0f, 0.5f);
  tensor::Tensor c(tensor::Shape{m, n});
  const std::string size = qgemm_size(m, k, n);
  auto rec = bench::time_serial_vs_threaded("qgemm", size, pool, [&] {
    tensor::gemm(false, false, m, n, k, a.data().data(), k, b.data().data(), n,
                 c.data().data(), n, /*accumulate=*/false);
    bench::do_not_optimize(c.data().data());
  });
  rec.kernel = "f32_packed";
  rec.flops_per_iter = 2.0 * m * n * double(k);
  return rec;
}

bench::MicroRecord qgemm_int8(common::ThreadPool& pool, int m, int k, int n) {
  common::Rng rng(3);
  auto a = tensor::Tensor::randn({m, k}, rng, 0.0f, 0.5f);
  auto b = tensor::Tensor::randn({k, n}, rng, 0.0f, 0.5f);
  tensor::Tensor c(tensor::Shape{m, n});
  const auto pa = tensor::pack_a_int8(a.data().data(), k, m, k, /*per_channel=*/true);
  const std::string size = qgemm_size(m, k, n);
  auto rec = bench::time_serial_vs_threaded("qgemm", size, pool, [&] {
    tensor::gemm_s8(pa, n, b.data().data(), n, c.data().data(), n, /*accumulate=*/false);
    bench::do_not_optimize(c.data().data());
  });
  rec.kernel = "int8_prepacked";
  rec.flops_per_iter = 2.0 * m * n * double(k);
  return rec;
}

bench::MicroRecord qgemm_f16(common::ThreadPool& pool, int m, int k, int n) {
  common::Rng rng(3);
  auto a = tensor::Tensor::randn({m, k}, rng, 0.0f, 0.5f);
  auto b = tensor::Tensor::randn({k, n}, rng, 0.0f, 0.5f);
  tensor::Tensor c(tensor::Shape{m, n});
  std::vector<std::uint16_t> ah(a.data().size()), bh(b.data().size());
  tensor::f32_to_f16_n(a.data().data(), ah.size(), ah.data());
  tensor::f32_to_f16_n(b.data().data(), bh.size(), bh.data());
  const std::string size = qgemm_size(m, k, n);
  auto rec = bench::time_serial_vs_threaded("qgemm", size, pool, [&] {
    tensor::gemm_f16(m, n, k, ah.data(), k, bh.data(), n, c.data().data(), n,
                     /*accumulate=*/false);
    bench::do_not_optimize(c.data().data());
  });
  rec.kernel = "f16_packed";
  rec.flops_per_iter = 2.0 * m * n * double(k);
  return rec;
}

// conv+bias+ReLU as one GEMM epilogue versus the pre-fusion layer pipeline:
// conv, then a separate ReLU pass that (like nn::ReLU::forward) writes a
// fresh output tensor. Same op+size, distinct kernel tags.
bench::MicroRecord conv_relu(common::ThreadPool& pool, int batch, int channels,
                             bool fused) {
  common::Rng rng(1);
  auto x = tensor::Tensor::randn({batch, 16, 10, 10}, rng);
  auto w = tensor::Tensor::randn({channels, 16, 3, 3}, rng, 0.0f, 0.1f);
  auto b = tensor::Tensor::zeros({channels});
  tensor::Conv2dSpec spec{1, 1};
  std::vector<float> cache;
  auto rec = bench::time_serial_vs_threaded(
      "conv2d_relu", batch_size(batch, channels), pool,
      [&] {
        auto y = tensor::conv2d_forward_cached(x, w, b, spec, cache, nullptr, fused);
        if (!fused) {
          tensor::Tensor out(y.shape());
          const auto& src = y.storage();
          auto& dst = out.storage();
          for (std::size_t i = 0; i < src.size(); ++i) dst[i] = src[i] < 0.0f ? 0.0f : src[i];
          bench::do_not_optimize(dst.data());
          return;
        }
        bench::do_not_optimize(y.data().data());
      });
  rec.kernel = fused ? "fused_epilogue" : "unfused";
  rec.flops_per_iter = conv_gemm_flops(batch, channels);
  return rec;
}

}  // namespace

int main() {
  bench::init_env();
  const std::size_t threads = common::resolve_n_threads(0);
  common::ThreadPool pool(threads);

  std::vector<bench::MicroRecord> records;
  for (int channels : {16, 32, 64}) records.push_back(conv_forward(pool, 32, channels));
  records.push_back(conv_forward(pool, 8, 32));
  for (int channels : {16, 32}) records.push_back(conv_backward(pool, 32, channels));
  records.push_back(conv_backward(pool, 8, 32));
  for (int n : {64, 256, 512}) records.push_back(matmul(pool, n));
  for (int n : {256, 512}) records.push_back(matmul_legacy(pool, n));

  // Quantized kernels at conv-shaped GEMMs (m=cout, k=cin·kh·kw, n=ho·wo).
  for (const auto& [m, k, n] :
       {std::tuple{32, 144, 100}, std::tuple{64, 576, 64}, std::tuple{50, 500, 16}}) {
    records.push_back(qgemm_f32(pool, m, k, n));
    records.push_back(qgemm_int8(pool, m, k, n));
    records.push_back(qgemm_f16(pool, m, k, n));
  }
  for (bool fused : {false, true}) records.push_back(conv_relu(pool, 32, 32, fused));

  // Aggregation rules have no parallel path (yet); timed serially for the
  // trajectory, with both columns reporting the same configuration.
  {
    auto updates = make_updates(10, 100000);
    records.push_back(bench::time_serial_vs_threaded("fedavg", "10x100k", pool, [&] {
      auto m = fl::mean_update(updates);
      bench::do_not_optimize(m.data());
    }));
  }
  {
    auto updates = make_updates(30, 10000);
    records.push_back(bench::time_serial_vs_threaded("krum", "30x10k", pool, [&] {
      auto m = fl::krum(updates, 2);
      bench::do_not_optimize(m.data());
    }));
  }
  {
    auto updates = make_updates(10, 100000);
    records.push_back(bench::time_serial_vs_threaded("median", "10x100k", pool, [&] {
      auto m = fl::coordinate_median(updates);
      bench::do_not_optimize(m.data());
    }));
  }

  std::printf("%-16s %-10s %-13s %14s %14s %9s %9s   (%zu threads)\n", "op", "size",
              "kernel", "serial ns/it", "pooled ns/it", "speedup", "GFLOP/s", threads);
  bench::print_rule(96);
  for (const auto& r : records) {
    std::printf("%-16s %-10s %-13s %14.0f %14.0f %8.2fx ", r.op.c_str(), r.size.c_str(),
                r.kernel.empty() ? "-" : r.kernel.c_str(), r.serial_ns, r.threaded_ns,
                r.speedup());
    if (r.flops_per_iter > 0.0) {
      std::printf("%9.2f\n", r.gflops_serial());
    } else {
      std::printf("%9s\n", "-");
    }
  }

  const std::string json_path = "BENCH_micro_ops.json";
  bench::write_micro_json(json_path, records, threads);
  std::printf("\nwrote %s\n", json_path.c_str());
  return 0;
}
