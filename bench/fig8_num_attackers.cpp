// Figure 8: the defense as the number of attackers grows from 1 to 9 of 10
// clients. Blue line in the paper = after federated pruning alone; red line
// = full pipeline (FP + FT + AW).
//
// Paper shape: with more attackers, pruning stops finding the backdoor
// neurons (their manipulated votes protect them) but the full pipeline —
// whose AW stage needs no client input — still cuts most of the attack.
#include "bench_common.h"

using namespace fedcleanse;

int main() {
  bench::init_env();
  std::printf("Figure 8 — defense vs number of attackers (of 10 clients) (scale=%.2f)\n\n",
              bench::scale());
  std::printf("#atk | train TA  AA | FP TA    AA | full TA  AA\n");
  bench::print_rule(52);
  for (int attackers = 1; attackers <= 9; attackers += 2) {
    auto cfg = bench::mnist_config(1400 + static_cast<std::uint64_t>(attackers));
    cfg.n_attackers = attackers;
    // Attackers manipulate the pruning protocol as in §VI-B Attack 1.
    cfg.attack.adaptive = fl::AdaptiveMode::kRankManipulation;
    fl::Simulation sim(cfg);
    sim.run(false);
    auto r = bench::run_all_modes(sim, bench::default_defense());
    std::printf("  %d  | %5.1f %5.1f | %5.1f %5.1f | %5.1f %5.1f\n", attackers,
                100 * r.train.test_acc, 100 * r.train.attack_acc, 100 * r.fp.test_acc,
                100 * r.fp.attack_acc, 100 * r.all.test_acc, 100 * r.all.attack_acc);
  }
  std::printf("\npaper: FP-only degrades as attackers grow; the full pipeline stays effective\n");
  return 0;
}
