// Figure 9: wall-clock time per defense phase across the three tasks.
//
// Paper shape: training dominates and grows steeply with model/task size;
// pruning cost is flat (one communication round); fine-tuning grows mildly;
// adjusting weights depends only on model size. Communication volume is
// also reported (the paper argues the defense adds little energy cost).
#include "bench_common.h"

using namespace fedcleanse;

namespace {

void run(const char* name, fl::SimulationConfig cfg) {
  fl::Simulation sim(cfg);
  sim.run(false);
  const std::size_t train_bytes = sim.network().total_bytes();

  auto report = defense::run_defense(sim, bench::default_defense());
  std::printf("%-14s %9.2f %9.2f %9.2f %9.2f   %8.1f / %8.1f\n", name,
              sim.training_seconds(), report.phase_seconds.at("pruning"),
              report.phase_seconds.count("fine-tuning")
                  ? report.phase_seconds.at("fine-tuning")
                  : 0.0,
              report.phase_seconds.at("adjust-weights"),
              static_cast<double>(train_bytes) / (1024.0 * 1024.0),
              static_cast<double>(sim.network().total_bytes() - train_bytes) /
                  (1024.0 * 1024.0));
}

}  // namespace

int main() {
  bench::init_env();
  std::printf("Figure 9 — time per defense phase (seconds) and traffic (MiB) (scale=%.2f)\n\n",
              bench::scale());
  std::printf("task             train   pruning  finetune  adjustW    traffic train/defense\n");
  bench::print_rule(78);
  run("mnist", bench::mnist_config(1500));
  run("fashion-mnist", bench::fashion_config(1501));
  run("cifar-10(dba)", bench::cifar_dba_config(1502));
  std::printf("\npaper: training dominates; pruning flat; FT mild; AW model-bound\n");
  return 0;
}
