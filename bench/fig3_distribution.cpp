// Figure 3: training dynamics under 3-, 5-, and 7-label non-IID
// distributions (MNIST stand-in, 10 clients, 1 attacker).
//
// Paper shape: sparser label distributions converge slower; the backdoor
// (dashed line in the paper) reaches ~100% quickly in all cases.
#include "bench_common.h"

using namespace fedcleanse;

int main() {
  bench::init_env();
  std::printf("Figure 3 — training under K-label non-IID distributions (scale=%.2f)\n\n",
              bench::scale());
  for (int k : {3, 5, 7}) {
    auto cfg = bench::mnist_config(1100 + static_cast<std::uint64_t>(k));
    cfg.labels_per_client = k;
    fl::Simulation sim(cfg);
    std::printf("%d-label distribution:\nround   TA      AA\n", k);
    for (int r = 0; r < cfg.rounds; ++r) {
      sim.run_round(static_cast<std::uint32_t>(r));
      std::printf("%4d  %.3f  %.3f\n", r, sim.test_accuracy(), sim.attack_success());
    }
    std::printf("\n");
  }
  return 0;
}
