// Ablation (paper §I / related work): Byzantine-robust aggregation rules —
// Krum, coordinate median, trimmed mean, Bulyan — fail to stop the model
// replacement backdoor under non-IID data, while the reputation scheme
// (cosine-similarity credibility) mutes the attacker at a cost. This is the
// motivating claim for a post-training defense.
#include "bench_common.h"
#include "fl/reputation.h"

using namespace fedcleanse;

int main() {
  bench::init_env();
  std::printf("Ablation — robust aggregation vs the model-replacement backdoor (scale=%.2f)\n\n",
              bench::scale());
  std::printf("aggregator     |  TA     AA\n");
  bench::print_rule(32);

  for (auto kind : {fl::AggregatorKind::kFedAvg, fl::AggregatorKind::kMedian,
                    fl::AggregatorKind::kTrimmedMean, fl::AggregatorKind::kKrum,
                    fl::AggregatorKind::kBulyan}) {
    auto cfg = bench::mnist_config(1800);
    cfg.server.aggregator = kind;
    cfg.server.byzantine_hint = 2;
    fl::Simulation sim(cfg);
    sim.run(false);
    std::printf("%-14s | %5.1f  %5.1f\n", fl::aggregator_name(kind),
                100 * sim.test_accuracy(), 100 * sim.attack_success());
  }

  // Reputation-weighted aggregation, run through the raw round protocol.
  {
    auto cfg = bench::mnist_config(1800);
    fl::Simulation sim(cfg);
    fl::ReputationAggregator reputation(cfg.n_clients);
    const auto clients = sim.all_client_ids();
    for (int r = 0; r < cfg.rounds; ++r) {
      const auto round = static_cast<std::uint32_t>(r);
      sim.server().broadcast_model(clients, round);
      sim.dispatch_clients(clients);
      auto replies = sim.server().collect_updates(clients, round);
      // Perfect wire here: every reply is present. Keep ids and updates
      // aligned anyway, since the reputation state is per client id.
      std::vector<int> responders;
      std::vector<std::vector<float>> updates;
      for (std::size_t i = 0; i < replies.size(); ++i) {
        if (!replies[i]) continue;
        responders.push_back(clients[i]);
        updates.push_back(std::move(*replies[i]));
      }
      auto agg = reputation.aggregate(responders, updates);
      auto params = sim.server().params();
      for (std::size_t i = 0; i < params.size(); ++i) params[i] += agg[i];
      sim.server().set_params(params);
    }
    std::printf("%-14s | %5.1f  %5.1f   (attacker reputation: %.2f)\n", "reputation",
                100 * sim.test_accuracy(), 100 * sim.attack_success(),
                reputation.reputation(0));
  }

  std::printf("\npaper claim: byzantine-robust rules fail against backdoors under non-IID data\n");
  return 0;
}
