// Table I: MNIST stand-in, three modes (Training / FP+AW / All), with the
// attack sweeping VL=9→AL∈{0..8} and VL∈{0..8}→AL=9.
//
// Paper shape: Training TA≈98, AA≈99.7; FP+AW drops AA to ~8 with ~4 TA
// loss; All (FP+FT+AW) keeps TA within ~1.5 and AA lowest on average.
#include "bench_common.h"

using namespace fedcleanse;

namespace {

struct Row {
  int vl, al;
  double ta_train, aa_train, ta_fpaw, aa_fpaw, ta_all, aa_all;
};

Row run_row(int vl, int al, std::uint64_t seed) {
  auto cfg = bench::mnist_config(seed);
  cfg.attack.victim_label = vl;
  cfg.attack.attack_label = al;
  fl::Simulation sim(cfg);
  sim.run(false);
  auto results = bench::run_all_modes(sim, bench::default_defense());
  return Row{vl,
             al,
             results.train.test_acc,
             results.train.attack_acc,
             results.fpaw.test_acc,
             results.fpaw.attack_acc,
             results.all.test_acc,
             results.all.attack_acc};
}

void print_rows(const std::vector<Row>& rows) {
  std::printf("VL  AL |  TA-tr  AA-tr |  TA-fpaw AA-fpaw |  TA-all  AA-all\n");
  bench::print_rule(64);
  Row avg{0, 0, 0, 0, 0, 0, 0, 0};
  for (const auto& r : rows) {
    std::printf("%2d  %2d |  %5.1f  %5.1f |  %5.1f   %5.1f  |  %5.1f   %5.1f\n", r.vl, r.al,
                100 * r.ta_train, 100 * r.aa_train, 100 * r.ta_fpaw, 100 * r.aa_fpaw,
                100 * r.ta_all, 100 * r.aa_all);
    avg.ta_train += r.ta_train;
    avg.aa_train += r.aa_train;
    avg.ta_fpaw += r.ta_fpaw;
    avg.aa_fpaw += r.aa_fpaw;
    avg.ta_all += r.ta_all;
    avg.aa_all += r.aa_all;
  }
  const double n = static_cast<double>(rows.size());
  bench::print_rule(64);
  std::printf("  Avg  |  %5.1f  %5.1f |  %5.1f   %5.1f  |  %5.1f   %5.1f\n",
              100 * avg.ta_train / n, 100 * avg.aa_train / n, 100 * avg.ta_fpaw / n,
              100 * avg.aa_fpaw / n, 100 * avg.ta_all / n, 100 * avg.aa_all / n);
}

}  // namespace

int main() {
  bench::init_env();
  std::printf("Table I — MNIST stand-in, modes Training / FP+AW / All (scale=%.2f)\n\n",
              bench::scale());

  std::vector<Row> left, right;
  for (int al = 0; al <= 8; ++al) {
    left.push_back(run_row(9, al, 100 + static_cast<std::uint64_t>(al)));
  }
  for (int vl = 0; vl <= 8; ++vl) {
    right.push_back(run_row(vl, 9, 200 + static_cast<std::uint64_t>(vl)));
  }

  std::printf("victim label 9:\n");
  print_rows(left);
  std::printf("\nattack label 9:\n");
  print_rows(right);

  std::vector<Row> all = left;
  all.insert(all.end(), right.begin(), right.end());
  double aa_tr = 0, aa_all = 0, ta_tr = 0, ta_all = 0;
  for (const auto& r : all) {
    aa_tr += r.aa_train;
    aa_all += r.aa_all;
    ta_tr += r.ta_train;
    ta_all += r.ta_all;
  }
  const double n = static_cast<double>(all.size());
  std::printf("\noverall: AA %.1f -> %.1f (paper: 99.7 -> 4.7), TA %.1f -> %.1f (paper: 98.3 -> 96.9)\n",
              100 * aa_tr / n, 100 * aa_all / n, 100 * ta_tr / n, 100 * ta_all / n);
  return 0;
}
