// Table VI: adjusting extreme weights ONLY (no pruning), on a Small NN
// (8/16-channel convs) vs a Large NN (20/50-channel convs).
//
// Paper shape: AW alone suffices when the model is concise (avg ASR 3.2 on
// the small net) but fails on the over-provisioned one (42.5) — redundant
// neurons let the backdoor dominate "through numbers" without extreme
// weights. N is the number of weights zeroed.
#include "bench_common.h"

using namespace fedcleanse;

namespace {

struct Cell {
  int zeroed;
  double ta, aa;
};

Cell run_cell(nn::Architecture arch, int vl, int al, std::uint64_t seed) {
  auto cfg = bench::mnist_config(seed);
  cfg.arch = arch;
  cfg.attack.victim_label = vl;
  cfg.attack.attack_label = al;
  fl::Simulation sim(cfg);
  sim.run(false);

  auto& server = sim.server();
  auto& model = server.model();
  auto dcfg = bench::default_defense();
  defense::AdjustConfig acfg = dcfg.adjust;
  acfg.min_accuracy = server.validation_accuracy() - dcfg.aw_acc_drop;
  auto layers = defense::default_adjust_layers(model.net, model.last_conv_index);
  auto adjust = defense::adjust_extreme_weights(model.net, layers, acfg,
                                                [&] { return server.validation_accuracy(); });
  return Cell{adjust.weights_zeroed, sim.test_accuracy(), sim.attack_success()};
}

}  // namespace

int main() {
  bench::init_env();
  std::printf("Table VI — AW only, Small NN (8/16) vs Large NN (20/50) (scale=%.2f)\n\n",
              bench::scale());
  std::printf("VL  AL | Small:   N    TA    AA | Large:   N    TA    AA\n");
  bench::print_rule(60);

  double small_aa = 0, large_aa = 0, small_ta = 0, large_ta = 0;
  int rows = 0;
  auto run_row = [&](int vl, int al, std::uint64_t seed) {
    auto small = run_cell(nn::Architecture::kSmallNn, vl, al, seed);
    auto large = run_cell(nn::Architecture::kLargeNn, vl, al, seed);
    std::printf("%2d  %2d |       %4d  %5.1f %5.1f |       %4d  %5.1f %5.1f\n", vl, al,
                small.zeroed, 100 * small.ta, 100 * small.aa, large.zeroed, 100 * large.ta,
                100 * large.aa);
    small_aa += small.aa;
    large_aa += large.aa;
    small_ta += small.ta;
    large_ta += large.ta;
    ++rows;
  };
  for (int al = 0; al <= 8; al += 2) run_row(9, al, 800 + static_cast<std::uint64_t>(al));
  for (int vl = 0; vl <= 8; vl += 2) run_row(vl, 9, 900 + static_cast<std::uint64_t>(vl));

  bench::print_rule(60);
  const double n = static_cast<double>(rows);
  std::printf("Avg    |             %5.1f %5.1f |             %5.1f %5.1f\n",
              100 * small_ta / n, 100 * small_aa / n, 100 * large_ta / n, 100 * large_aa / n);
  std::printf("\npaper avg: small 98.2/3.2, large 97.5/42.5 — AW-only works only on concise models\n");
  return 0;
}
