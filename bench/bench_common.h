// Shared helpers for the experiment benches.
//
// Every bench regenerates one table or figure of the paper. Because the
// substrate is a single-core simulator rather than the authors' GPU testbed,
// sizes are scaled by FEDCLEANSE_SCALE (default 1.0): shapes — who wins, by
// roughly what factor — are the reproduction target, not absolute numbers.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/threadpool.h"
#include "common/timer.h"
#include "defense/pipeline.h"
#include "fl/metrics.h"
#include "fl/simulation.h"
#include "obs/trace.h"

namespace fedcleanse::bench {

// Common bench setup: log level from FEDCLEANSE_LOG, telemetry from
// FEDCLEANSE_TRACE / FEDCLEANSE_METRICS. When a trace was requested it is
// flushed at process exit so benches need no explicit teardown.
inline void init_env() {
  common::init_log_level_from_env();
  obs::init_from_env();
  if (obs::tracing_enabled()) std::atexit([] { obs::flush_trace(); });
}

inline double scale() {
  if (const char* env = std::getenv("FEDCLEANSE_SCALE")) {
    const double s = std::strtod(env, nullptr);
    if (s > 0.0) return s;
  }
  return 1.0;
}

inline int scaled(int base) {
  const int v = static_cast<int>(base * scale());
  return v < 1 ? 1 : v;
}

// Round counts degrade convergence much faster than sample counts, so
// scaled round budgets keep a floor: an undertrained federation makes every
// defense number meaningless.
inline int scaled_rounds(int base, int floor_rounds) {
  const int v = scaled(base);
  return v < floor_rounds ? floor_rounds : v;
}

// Baseline experiment configuration for the MNIST stand-in task: 10 clients,
// 1 attacker, 3-label non-IID, 5-pixel trigger, model replacement γ = 5.
inline fl::SimulationConfig mnist_config(std::uint64_t seed) {
  fl::SimulationConfig cfg;
  cfg.arch = nn::Architecture::kMnistCnn;
  cfg.dataset = data::SynthKind::kDigits;
  cfg.n_clients = 10;
  cfg.n_attackers = 1;
  cfg.rounds = scaled_rounds(20, 16);
  cfg.labels_per_client = 3;
  cfg.samples_per_class_train = scaled(90);
  cfg.samples_per_class_test = 50;
  cfg.attack.pattern = data::make_pixel_pattern(1);
  cfg.attack.victim_label = 9;
  cfg.attack.attack_label = 1;
  cfg.attack.gamma = 5.0;
  cfg.attack.poison_copies = 2;
  cfg.seed = seed;
  return cfg;
}

// Fashion-MNIST stand-in: single-pixel trigger (per the paper's Table II).
inline fl::SimulationConfig fashion_config(std::uint64_t seed) {
  fl::SimulationConfig cfg = mnist_config(seed);
  cfg.arch = nn::Architecture::kFashionCnn;
  cfg.dataset = data::SynthKind::kFashion;
  cfg.attack.pattern = data::make_pixel_pattern(1);
  cfg.rounds = scaled_rounds(24, 18);
  return cfg;
}

// CIFAR-10 stand-in under DBA: 4 attackers, each with a slice of the
// plus-shaped global trigger, VGG-style network.
inline fl::SimulationConfig cifar_dba_config(std::uint64_t seed) {
  fl::SimulationConfig cfg;
  cfg.arch = nn::Architecture::kVggSmall;
  cfg.dataset = data::SynthKind::kObjects;
  cfg.n_clients = 10;
  cfg.n_attackers = 4;
  cfg.dba = true;
  cfg.rounds = scaled_rounds(24, 18);
  cfg.labels_per_client = 5;
  cfg.samples_per_class_train = scaled(100);
  cfg.samples_per_class_test = 50;
  cfg.train.lr = 0.2;
  cfg.attack.pattern = data::make_dba_global_pattern(16, 16);
  cfg.attack.victim_label = 9;  // "truck"
  cfg.attack.attack_label = 0;  // "airplane"
  cfg.attack.gamma = 2.0;
  cfg.attack.poison_copies = 2;
  cfg.seed = seed;
  return cfg;
}

inline defense::DefenseConfig default_defense() {
  defense::DefenseConfig cfg;
  cfg.method = defense::PruneMethod::kMVP;
  cfg.vote_prune_rate = 0.5;
  cfg.prune_acc_drop = 0.02;
  cfg.aw_acc_drop = 0.05;
  cfg.adjust.delta_step = 0.25;
  cfg.adjust.delta_min = 0.5;
  return cfg;
}

// One training run, all defense modes: after federated pruning the model is
// cloned so FP and FP+AW numbers come from a side branch while FT+AW (the
// "All" mode) continues on the live federation. This matches the paper's
// tables, which report every mode for the same attacked model.
struct ModeResults {
  defense::StageMetrics train, fp, fpaw, all;
  int neurons_pruned = 0;
  int weights_zeroed_fpaw = 0;
  int weights_zeroed_all = 0;
};

inline ModeResults run_all_modes(fl::Simulation& sim, const defense::DefenseConfig& dcfg) {
  ModeResults out;
  out.train = {sim.test_accuracy(), sim.attack_success()};
  auto& server = sim.server();
  auto& model = server.model();
  const double baseline = server.validation_accuracy();

  // Federated pruning on the live model.
  auto order = defense::federated_pruning_order(sim, dcfg);
  auto prune = defense::prune_until(
      model.net, model.last_conv_index, order,
      [&] { return server.validation_accuracy(); }, baseline - dcfg.prune_acc_drop);
  out.neurons_pruned = prune.n_pruned;
  out.fp = {sim.test_accuracy(), sim.attack_success()};

  // Side branch: AW without fine-tuning.
  {
    auto branch = model.clone();
    defense::AdjustConfig acfg = dcfg.adjust;
    acfg.min_accuracy =
        std::min(fl::evaluate_accuracy(branch.net, server.validation_set()), baseline) -
        dcfg.aw_acc_drop;
    auto layers = dcfg.aw_include_fc
                      ? defense::default_adjust_layers(branch.net, branch.last_conv_index)
                      : std::vector<int>{branch.last_conv_index};
    auto adjust = defense::adjust_extreme_weights(branch.net, layers, acfg, [&] {
      return fl::evaluate_accuracy(branch.net, server.validation_set());
    });
    out.weights_zeroed_fpaw = adjust.weights_zeroed;
    out.fpaw = {fl::evaluate_accuracy(branch.net, sim.test_set()),
                fl::attack_success_rate(branch.net, sim.backdoor_testset())};
  }

  // Live branch: fine-tune, then AW ("All" mode).
  defense::federated_finetune(sim, dcfg.finetune);
  {
    defense::AdjustConfig acfg = dcfg.adjust;
    acfg.min_accuracy =
        std::min(server.validation_accuracy(), baseline) - dcfg.aw_acc_drop;
    auto layers = dcfg.aw_include_fc
                      ? defense::default_adjust_layers(model.net, model.last_conv_index)
                      : std::vector<int>{model.last_conv_index};
    auto adjust = defense::adjust_extreme_weights(
        model.net, layers, acfg, [&] { return server.validation_accuracy(); });
    out.weights_zeroed_all = adjust.weights_zeroed;
  }
  out.all = {sim.test_accuracy(), sim.attack_success()};
  return out;
}

// Class names for the CIFAR-10 stand-in rows (paper uses CIFAR-10 names;
// our classes are color/shape composites standing in positionally).
inline const char* object_class_name(int label) {
  static const char* names[10] = {"airplane", "automobile", "bird",  "cat",  "deer",
                                  "dog",      "frog",       "horse", "ship", "truck"};
  return (label >= 0 && label < 10) ? names[label] : "?";
}

inline void print_rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

// --- micro-benchmark timing --------------------------------------------------
// Hand-rolled wall-clock harness for the kernel microbenchmarks: times a body
// serially and on an N-thread pool, and emits a machine-readable JSON file so
// the perf trajectory is tracked from run to run.

// Keep the optimizer from discarding a result the benchmark body produced.
inline void do_not_optimize(const void* p) { asm volatile("" : : "g"(p) : "memory"); }

// Best (minimum) mean wall-clock nanoseconds per call of `body` over `reps`
// timed repetitions. A warmup phase first runs the body with doubling batch
// sizes until it has burned ~min_seconds/4 — that settles first-touch
// allocation, cache state, and workspace growth, and calibrates the batch
// size — then each of the `reps` repetitions times one batch and the fastest
// repetition wins. Min-of-K discards interference from the host (other
// processes, frequency ramps), which inflates only the slow reps.
inline double time_ns_per_iter(const std::function<void()>& body,
                               double min_seconds = 0.1, long min_iters = 5,
                               int reps = 5) {
  long batch = 1;
  long warm_iters = 0;
  common::Timer warm;
  double elapsed = 0.0;
  while (elapsed < min_seconds / 4.0 || warm_iters < min_iters) {
    for (long i = 0; i < batch; ++i) body();
    warm_iters += batch;
    elapsed = warm.elapsed_seconds();
    if (elapsed < min_seconds / 16.0) batch *= 2;
  }
  const double est_ns = elapsed * 1e9 / static_cast<double>(warm_iters);
  const double rep_budget_ns = min_seconds * 1e9 / (4.0 * reps);
  long rep_iters = est_ns > 0.0 ? static_cast<long>(rep_budget_ns / est_ns) : min_iters;
  if (rep_iters < 1) rep_iters = 1;
  double best_ns = 0.0;
  for (int r = 0; r < reps; ++r) {
    common::Timer timer;
    for (long i = 0; i < rep_iters; ++i) body();
    const double ns = timer.elapsed_seconds() * 1e9 / static_cast<double>(rep_iters);
    if (r == 0 || ns < best_ns) best_ns = ns;
  }
  return best_ns;
}

struct MicroRecord {
  std::string op;
  std::string size;        // e.g. "b32_c64" or "n256"
  double serial_ns = 0.0;  // ns/iter with no ambient pool
  double threaded_ns = 0.0;
  std::string kernel;           // e.g. "gemm_packed" vs "legacy_scalar"; "" = n/a
  double flops_per_iter = 0.0;  // 0 = not a flop-counted op
  double speedup() const { return threaded_ns > 0.0 ? serial_ns / threaded_ns : 0.0; }
  double gflops_serial() const {
    return serial_ns > 0.0 ? flops_per_iter / serial_ns : 0.0;
  }
};

// Time `body` twice — ambient pool cleared, then installed — restoring
// whatever ambient pool the caller had.
inline MicroRecord time_serial_vs_threaded(std::string op, std::string size,
                                           common::ThreadPool& pool,
                                           const std::function<void()>& body) {
  MicroRecord rec;
  rec.op = std::move(op);
  rec.size = std::move(size);
  common::ThreadPool* previous = common::ambient_pool();
  common::set_ambient_pool(nullptr);
  rec.serial_ns = time_ns_per_iter(body);
  common::set_ambient_pool(&pool);
  rec.threaded_ns = time_ns_per_iter(body);
  common::set_ambient_pool(previous);
  return rec;
}

inline void write_micro_json(const std::string& path, const std::vector<MicroRecord>& records,
                             std::size_t threads) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"micro_ops\",\n  \"threads\": " << threads
      << ",\n  \"hardware_concurrency\": " << std::thread::hardware_concurrency()
      << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& r = records[i];
    out << "    {\"op\": \"" << r.op << "\", \"size\": \"" << r.size << "\", \"kernel\": \""
        << r.kernel << "\", \"serial_ns_per_iter\": " << r.serial_ns
        << ", \"threaded_ns_per_iter\": " << r.threaded_ns
        << ", \"speedup\": " << r.speedup() << ", \"flops_per_iter\": " << r.flops_per_iter
        << ", \"gflops_serial\": " << r.gflops_serial() << "}"
        << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace fedcleanse::bench
