// Figure 6: the adjusting-extreme-weights process under a sweep of Δ.
//
// Two attack targets (9→0 and 9→2, as in the paper). For each, train the
// backdoored model, then sweep Δ downward and print test accuracy and attack
// success rate at each threshold. Δ=inf row is the unmodified model.
#include "bench_common.h"

using namespace fedcleanse;

int main(int argc, char** argv) {
  const double gamma_override = argc > 1 ? std::strtod(argv[1], nullptr) : 0.0;
  const double wd = argc > 2 ? std::strtod(argv[2], nullptr) : 0.0;
  bench::init_env();
  std::printf("Figure 6 — adjusting extreme weights vs. threshold Δ\n");
  std::printf("(paper: ASR collapses at large Δ while TA holds; scale=%.2f)\n\n",
              bench::scale());

  for (int target : {0, 2}) {
    auto cfg = bench::mnist_config(42 + static_cast<std::uint64_t>(target));
    cfg.attack.attack_label = target;
    if (gamma_override > 0.0) cfg.attack.gamma = gamma_override;
    cfg.train.weight_decay = wd;
    fl::Simulation sim(cfg);
    sim.run(false);

    std::printf("backdoor 9 -> %d   (trained: TA=%.3f AA=%.3f)\n", target,
                sim.test_accuracy(), sim.attack_success());
    std::printf("  delta    TA      AA    zeroed\n");
    std::printf("   inf   %.3f   %.3f       0\n", sim.test_accuracy(), sim.attack_success());

    auto& model = sim.server().model();
    defense::AdjustConfig acfg;
    acfg.delta_start = 6.0;
    acfg.delta_step = 0.5;
    acfg.delta_min = 1.0;
    acfg.min_accuracy = 0.0;  // full sweep for the figure; no early stop
    auto outcome = defense::adjust_extreme_weights(
        model.net, model.last_conv_index, acfg,
        [&] { return sim.test_accuracy(); }, [&] { return sim.attack_success(); });
    for (const auto& step : outcome.trace) {
      std::printf("  %4.1f   %.3f   %.3f   %5d\n", step.delta, step.accuracy,
                  step.attack_acc, step.weights_zeroed);
    }
    std::printf("\n");
  }
  return 0;
}
